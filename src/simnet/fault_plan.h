#ifndef CCUBE_SIMNET_FAULT_PLAN_H_
#define CCUBE_SIMNET_FAULT_PLAN_H_

/**
 * @file
 * Timed fault injection for the simulated fabric.
 *
 * A FaultPlan is a list of events — channel fail/restore, bandwidth
 * degrade, whole-node slowdown — stamped with simulated times.
 * applyFaultPlan() schedules each one into the DES so the Network's
 * live channel state mutates *mid-collective*: transfers requested
 * after a failure are dropped (their completion callback never fires,
 * so the flow dies exactly like traffic into a dead NVLink), and
 * transfers after a degrade run at the reduced bandwidth. This is the
 * infrastructure-failure modeling that ASTRA-sim 3.0 motivates,
 * grafted onto the channel/FifoResource fabric.
 *
 * runDoubleTreeWithFaults() is the faulted analog of
 * runDoubleTreeSchedule(): it reports whether the collective survived
 * the plan and returns partial per-chunk results when it did not —
 * the detection signal bench/abl_fault_recovery feeds into
 * core::recoverSchedule.
 */

#include <vector>

#include "simnet/channel.h"
#include "simnet/double_tree_schedule.h"
#include "topo/graph.h"

namespace ccube {
namespace simnet {

/** One timed fault event. */
struct FaultEvent {
    enum class Kind {
        kChannelFail,    ///< drop all future transfers on the channel
        kChannelRestore, ///< clear a failure
        kChannelDegrade, ///< multiply channel bandwidth by factor
        kNodeSlowdown,   ///< multiply all of a node's links by factor
    };

    double at = 0.0;      ///< simulated time the event fires
    Kind kind = Kind::kChannelFail;
    int channel_id = -1;  ///< target channel (channel events)
    topo::NodeId node = -1; ///< target node (kNodeSlowdown)
    double factor = 1.0;  ///< bandwidth multiplier (degrade/slowdown)
};

/**
 * Ordered collection of fault events (builder-style; chainable).
 */
class FaultPlan
{
  public:
    FaultPlan() = default;

    /** Fails @p channel_id at time @p at. */
    FaultPlan& failChannel(double at, int channel_id);

    /** Restores @p channel_id at time @p at. */
    FaultPlan& restoreChannel(double at, int channel_id);

    /** Multiplies @p channel_id's bandwidth by @p factor at @p at. */
    FaultPlan& degradeChannel(double at, int channel_id, double factor);

    /** Multiplies all of @p node's links by @p factor at @p at. */
    FaultPlan& slowNode(double at, topo::NodeId node, double factor);

    /** The events, in insertion order (the DES orders them by time). */
    const std::vector<FaultEvent>& events() const { return events_; }

    bool empty() const { return events_.empty(); }

  private:
    std::vector<FaultEvent> events_;
};

/**
 * Schedules every event of @p plan into @p network's simulation (at
 * absolute simulated times) so it mutates the live channel state
 * mid-run. Call after constructing the schedules, before
 * simulation.run(). Each event emits an obs:: instant when tracing.
 */
void applyFaultPlan(Network& network, const FaultPlan& plan);

/** Outcome of a schedule run under a fault plan. */
struct FaultedRunResult {
    /** Whether every chunk reached every rank despite the plan. */
    bool completed = false;

    /** Simulated time the DES drained (completion or stall point). */
    double end_time = 0.0;

    /** Transfers the network dropped on failed channels. */
    std::uint64_t dropped_transfers = 0;

    /** Per-chunk results; partial (-1.0 sentinels) when !completed. */
    ScheduleResult result;
};

/**
 * Runs a double-tree AllReduce of @p total_bytes under @p plan. Same
 * lane assignment as runDoubleTreeSchedule(); tolerates a plan that
 * kills the collective (the DES drains with arrivals outstanding) and
 * reports partial results instead of panicking.
 */
FaultedRunResult runDoubleTreeWithFaults(
    sim::Simulation& simulation, Network& network,
    const topo::DoubleTreeEmbedding& embedding, double total_bytes,
    PhaseMode mode, int chunks_per_tree, const FaultPlan& plan,
    LanePolicy lanes = LanePolicy::kPointToPoint);

} // namespace simnet
} // namespace ccube

#endif // CCUBE_SIMNET_FAULT_PLAN_H_
