#ifndef CCUBE_CORE_RECOVERY_H_
#define CCUBE_CORE_RECOVERY_H_

/**
 * @file
 * Degraded-topology schedule recovery.
 *
 * When a channel fails mid-training (detected by the ccl watchdog on
 * the runtime side, or by a dead flow in the simnet DES), the C-Cube
 * embedding that assumed the full topology is no longer valid. This
 * module re-plans over the surviving graph, walking a fallback ladder
 * from best to worst:
 *
 *   1. kCCube      — embedding_search finds a conflict-free double
 *                    tree on the survivors: full overlapped C-Cube
 *                    performance is retained.
 *   2. kDoubleTree — no conflict-free embedding, but every pair is
 *                    still NVLink-reachable: a mirrored double tree
 *                    with channel contention (run two-phase, like the
 *                    paper's baseline B).
 *   3. kRing       — disjoint rings still exist: classic ring
 *                    AllReduce bandwidth.
 *   4. kNone       — the surviving graph cannot route a collective
 *                    at all (e.g. a partitioned fabric).
 *
 * bench/abl_fault_recovery drives this end-to-end: fail a link →
 * detect → recoverSchedule → re-run the collective, reporting
 * time-to-recover and post-recovery bandwidth per fault scenario.
 */

#include <optional>
#include <vector>

#include "topo/double_tree.h"
#include "topo/embedding_search.h"
#include "topo/graph.h"
#include "topo/ring_embedding.h"

namespace ccube {
namespace core {

/** Rung of the recovery ladder a re-plan landed on. */
enum class RecoveryKind {
    kCCube,      ///< conflict-free double tree (full performance)
    kDoubleTree, ///< routable mirrored double tree (contended)
    kRing,       ///< disjoint-ring fallback
    kNone,       ///< unrecoverable: surviving graph cannot route
};

/** Stable name for table/bench_json output. */
const char* recoveryKindName(RecoveryKind kind);

/** Knobs for recoverSchedule. */
struct RecoveryOptions {
    /** Embedding search budget on the surviving graph. num_ranks 0
     *  keeps "all graph nodes are ranks". */
    topo::EmbeddingSearchOptions search;

    /** Ring fallback budget (max disjoint rings to look for). */
    int ring_count = 4;
};

/** Outcome of one re-plan over a degraded topology. */
struct RecoveryResult {
    RecoveryKind kind = RecoveryKind::kNone;

    /** The surviving graph the schedule below embeds into. */
    topo::Graph graph{"unrecovered"};

    /** Double tree (kCCube: conflict-free; kDoubleTree: contended). */
    std::optional<topo::DoubleTreeEmbedding> double_tree;

    /** Ring fallback (kRing; empty otherwise). */
    std::vector<topo::RingEmbedding> rings;

    /** Wall-clock seconds the re-plan (search + fallbacks) took. */
    double search_seconds = 0.0;

    /** Whether any schedule was recovered. */
    bool usable() const { return kind != RecoveryKind::kNone; }
};

/**
 * Re-plans the collective over @p graph minus @p failed_channels
 * (directed channel ids of @p graph; list both directions for a
 * bidirectional link failure). Walks the recovery ladder and never
 * panics on an unroutable survivor graph — unroutability is reported
 * as kNone, not a crash.
 */
RecoveryResult recoverSchedule(const topo::Graph& graph,
                               const std::vector<int>& failed_channels,
                               const RecoveryOptions& options = {});

} // namespace core
} // namespace ccube

#endif // CCUBE_CORE_RECOVERY_H_
