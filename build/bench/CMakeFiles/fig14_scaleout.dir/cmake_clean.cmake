file(REMOVE_RECURSE
  "CMakeFiles/fig14_scaleout.dir/fig14_scaleout.cpp.o"
  "CMakeFiles/fig14_scaleout.dir/fig14_scaleout.cpp.o.d"
  "fig14_scaleout"
  "fig14_scaleout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_scaleout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
