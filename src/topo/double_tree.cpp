#include "topo/double_tree.h"

#include <algorithm>

#include "util/logging.h"

namespace ccube {
namespace topo {

namespace {

/** Adds one use per direction for every segment of @p route. */
void
accumulateRoute(UsageMap& usage, const Route& route)
{
    for (std::size_t i = 0; i + 1 < route.hops.size(); ++i) {
        const NodeId a = route.hops[i];
        const NodeId b = route.hops[i + 1];
        const auto key = std::minmax(a, b);
        ChannelUsage& entry = usage[{key.first, key.second}];
        // The overlapped algorithm drives every logical edge in both
        // directions at once (reduction up + broadcast down).
        if (a < b) {
            ++entry.forward;
            ++entry.backward;
        } else {
            ++entry.backward;
            ++entry.forward;
        }
    }
}

void
accumulateTree(UsageMap& usage, const TreeEmbedding& embedding)
{
    for (const Route& route : embedding.routes)
        accumulateRoute(usage, route);
}

/** Builds a BinaryTree from explicit (parent, child) edges. */
BinaryTree
treeFromEdges(int num_nodes, NodeId root,
              const std::vector<std::pair<NodeId, NodeId>>& edges)
{
    BinaryTree tree(num_nodes);
    tree.setRoot(root);
    for (const auto& [parent, child] : edges)
        tree.addEdge(parent, child);
    CCUBE_CHECK(tree.valid(), "hand-crafted tree is invalid");
    return tree;
}

} // namespace

UsageMap
analyzeChannelUsage(const DoubleTreeEmbedding& embedding)
{
    UsageMap usage;
    accumulateTree(usage, embedding.tree0);
    accumulateTree(usage, embedding.tree1);
    return usage;
}

bool
isConflictFree(const Graph& graph, const DoubleTreeEmbedding& embedding)
{
    return conflictingPairs(graph, embedding).empty();
}

std::vector<std::pair<NodeId, NodeId>>
conflictingPairs(const Graph& graph, const DoubleTreeEmbedding& embedding)
{
    std::vector<std::pair<NodeId, NodeId>> conflicts;
    for (const auto& [pair, usage] : analyzeChannelUsage(embedding)) {
        const int multiplicity = graph.linkCount(pair.first, pair.second);
        if (usage.forward > multiplicity || usage.backward > multiplicity)
            conflicts.push_back(pair);
    }
    return conflicts;
}

DoubleTreeEmbedding
makeDgx1DoubleTree(const Graph& dgx1)
{
    CCUBE_CHECK(dgx1.nodeCount() >= 8, "expected a DGX-1 graph");

    // Tree 0 (paper Fig. 10(b) left): root GPU2. The logical edge
    // 2–4 has no physical NVLink; its route detours through GPU0.
    const BinaryTree t0 = treeFromEdges(
        8, /*root=*/2,
        {{2, 3}, {2, 4}, {3, 0}, {3, 7}, {0, 1}, {4, 6}, {6, 5}});

    // Tree 1: root GPU3; logical edge 3–5 detours through GPU1. The
    // pairs carrying both trees — (2,3) and (0,4) — are double
    // NVLinks, so the overlapped algorithm has a private channel per
    // tree per direction.
    const BinaryTree t1 = treeFromEdges(
        8, /*root=*/3,
        {{3, 2}, {3, 5}, {2, 1}, {2, 6}, {5, 4}, {5, 7}, {4, 0}});

    TreeEmbedding e0 = embedTree(dgx1, t0);
    TreeEmbedding e1 = embedTree(dgx1, t1);

    // The construction is only correct if the promised detours were
    // actually taken (shortest NVLink paths through GPU0 / GPU1).
    bool found_detour0 = false;
    for (const Route& r : e0.routes) {
        if (r.isDetour()) {
            CCUBE_CHECK(r.transits() == std::vector<NodeId>{0},
                        "tree0 detour must transit GPU0");
            found_detour0 = true;
        }
    }
    bool found_detour1 = false;
    for (const Route& r : e1.routes) {
        if (r.isDetour()) {
            CCUBE_CHECK(r.transits() == std::vector<NodeId>{1},
                        "tree1 detour must transit GPU1");
            found_detour1 = true;
        }
    }
    CCUBE_CHECK(found_detour0 && found_detour1,
                "DGX-1 double tree lost its detour edges");

    return DoubleTreeEmbedding(std::move(e0), std::move(e1));
}

DoubleTreeEmbedding
makeNaiveDgx1DoubleTree(const Graph& dgx1)
{
    const BinaryTree t0 = BinaryTree::inorder(8);
    const BinaryTree t1 = t0.mirrored();
    return DoubleTreeEmbedding(embedTree(dgx1, t0), embedTree(dgx1, t1));
}

DoubleTreeEmbedding
makeMirroredDoubleTree(const Graph& graph, int num_ranks)
{
    CCUBE_CHECK(num_ranks >= 2, "need at least two ranks");
    CCUBE_CHECK(num_ranks <= graph.nodeCount(),
                "more ranks than graph nodes");
    const BinaryTree t0 = BinaryTree::inorder(num_ranks);
    const BinaryTree t1 = t0.mirrored();
    return DoubleTreeEmbedding(embedTree(graph, t0), embedTree(graph, t1));
}

} // namespace topo
} // namespace ccube
