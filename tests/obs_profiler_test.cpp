/**
 * @file
 * obs::Profiler + wait-for-graph coverage.
 *
 * Unit side: WaitForRegistry chain walking on golden registries —
 * linear stall chains, wait cycles, self-post, edge clearing — plus a
 * sampler smoke capture (publish a phase, observe samples and the
 * collapsed-stack rendering). E2e side: a FaultInjector kill during a
 * P=64 ring AllReduce must surface a CollectiveError whose wait-for
 * chain terminates at the killed rank, in all three engine modes —
 * the ring is the shape where the chain is exact (every rank has one
 * upstream), so the terminus assertion is deterministic.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <thread>
#include <vector>

#include "ccl/communicator.h"
#include "ccl/executor.h"
#include "ccl/fault.h"
#include "ccl/ring_allreduce.h"
#include "obs/profiler.h"
#include "topo/ring_embedding.h"

namespace ccube {
namespace {

using namespace std::chrono_literals;
using obs::Profiler;
using obs::ProfPhase;
using obs::WaitForRegistry;

// ---------------------------------------------------------------------------
// WaitForRegistry golden-registry units
// ---------------------------------------------------------------------------

TEST(WaitForRegistry, LinearChainTerminatesAtDeadRank)
{
    WaitForRegistry registry(8);
    registry.markDead(1);
    registry.noteWait(2, 1, "mb 1->2/f0", 0);
    registry.noteWait(3, 2, "mb 2->3/f0", 0);
    registry.noteWait(4, 3, "mb 3->4/f0", 0);

    const WaitForRegistry::Chain chain = registry.chain(4);
    ASSERT_EQ(chain.length(), 3u);
    EXPECT_EQ(chain.links[0].rank, 4);
    EXPECT_EQ(chain.links[1].rank, 3);
    EXPECT_EQ(chain.links[2].rank, 2);
    EXPECT_EQ(chain.terminus, 1);
    EXPECT_TRUE(chain.terminus_dead);
    EXPECT_FALSE(chain.cycle);

    const std::string text = WaitForRegistry::formatChain(chain);
    EXPECT_NE(text.find("r4 parked on mb 3->4/f0"), std::string::npos)
        << text;
    EXPECT_NE(text.find("r1 killed"), std::string::npos) << text;
}

TEST(WaitForRegistry, LongestChainPicksTheDeepestWaiter)
{
    WaitForRegistry registry(8);
    registry.markDead(0);
    registry.noteWait(1, 0, "mb 0->1/f0", 0);
    registry.noteWait(2, 1, "mb 1->2/f0", 0);
    registry.noteWait(5, 0, "mb 0->5/f1", 1); // short side branch

    const WaitForRegistry::Chain chain = registry.longestChain();
    ASSERT_EQ(chain.length(), 2u);
    EXPECT_EQ(chain.links[0].rank, 2);
    EXPECT_EQ(chain.terminus, 0);
}

TEST(WaitForRegistry, CycleIsDetectedNotFollowedForever)
{
    WaitForRegistry registry(4);
    registry.noteWait(0, 1, "mb 1->0/f0", 0);
    registry.noteWait(1, 0, "mb 0->1/f0", 0);

    const WaitForRegistry::Chain chain = registry.chain(0);
    EXPECT_TRUE(chain.cycle);
    EXPECT_EQ(chain.length(), 2u);
    EXPECT_EQ(chain.terminus, 0); // walk returned to its start
    EXPECT_NE(WaitForRegistry::formatChain(chain).find("wait cycle"),
              std::string::npos);
}

TEST(WaitForRegistry, SelfPostIsAOneLinkCycle)
{
    WaitForRegistry registry(8);
    registry.noteWait(5, 5, "mb 5->5/f0", 0);

    const WaitForRegistry::Chain chain = registry.chain(5);
    EXPECT_TRUE(chain.cycle);
    EXPECT_EQ(chain.length(), 1u);
    EXPECT_EQ(chain.terminus, 5);
}

TEST(WaitForRegistry, ClearWaitRemovesTheEdge)
{
    WaitForRegistry registry(4);
    registry.noteWait(2, 1, "mb 1->2/f0", 0);
    EXPECT_TRUE(registry.waiting(2));
    registry.clearWait(2);
    EXPECT_FALSE(registry.waiting(2));
    EXPECT_TRUE(registry.longestChain().empty());
}

TEST(WaitForRegistry, UnknownPeerEndsTheChainAtExternal)
{
    WaitForRegistry registry(4);
    registry.noteWait(3, -1, "<stalled>", 2);

    const WaitForRegistry::Chain chain = registry.chain(3);
    EXPECT_EQ(chain.length(), 1u);
    EXPECT_EQ(chain.terminus, -1);
    EXPECT_NE(WaitForRegistry::formatChain(chain).find("<external>"),
              std::string::npos);
}

TEST(WaitForRegistry, ResetDropsEdgesAndDeadMarks)
{
    WaitForRegistry registry(4);
    registry.markDead(1);
    registry.noteWait(2, 1, "mb 1->2/f0", 0);
    registry.reset();
    EXPECT_FALSE(registry.waiting(2));
    EXPECT_FALSE(registry.dead(1));
}

// ---------------------------------------------------------------------------
// Sampler smoke
// ---------------------------------------------------------------------------

TEST(ProfilerSampler, CapturesPublishedPhasesAndParkedTime)
{
    Profiler& profiler = Profiler::global();
    profiler.start(4000.0);
    ASSERT_TRUE(profiler.enabled());

    std::atomic<bool> stop{false};
    std::thread worker([&]() {
        obs::ScopedProfPhase phase(ProfPhase::kStep, 3);
        while (!stop.load(std::memory_order_relaxed))
            std::this_thread::sleep_for(1ms);
    });
    std::this_thread::sleep_for(150ms);
    stop.store(true, std::memory_order_relaxed);
    worker.join();
    profiler.addParkedNs(3, 1'000'000); // exact feed, as the engine does
    profiler.stop();

    EXPECT_FALSE(profiler.enabled());
    EXPECT_GT(profiler.ticks(), 0u);
    EXPECT_GT(profiler.samples(ProfPhase::kStep, 3), 0u);
    EXPECT_EQ(profiler.parkedNs(3), 1'000'000u);

    std::ostringstream collapsed;
    profiler.writeCollapsed(collapsed);
    const std::string text = collapsed.str();
    EXPECT_NE(text.find("ccl;rank3;step"), std::string::npos) << text;
    EXPECT_NE(text.find("ccl;rank3;parked"), std::string::npos) << text;
}

TEST(ProfilerSampler, DisabledPublishIsANoOp)
{
    Profiler& profiler = Profiler::global();
    ASSERT_FALSE(profiler.enabled());
    // Publication while stopped must not touch the thread slot (a
    // later capture would otherwise sample a stale phase forever).
    {
        obs::ScopedProfPhase phase(ProfPhase::kMailboxPost, 7);
    }
    profiler.start(4000.0);
    std::this_thread::sleep_for(20ms);
    profiler.stop();
    EXPECT_EQ(profiler.samples(ProfPhase::kMailboxPost, 7), 0u);
}

// ---------------------------------------------------------------------------
// E2e: kill → stall report with the killed rank as chain terminus
// ---------------------------------------------------------------------------

class StallReportE2e
    : public ::testing::TestWithParam<ccl::RankExecutor::Mode>
{
};

TEST_P(StallReportE2e, KillAtP64RingChainTerminatesAtKilledRank)
{
    constexpr int kRanks = 64;
    constexpr int kKilled = 9;

    ccl::Communicator comm(kRanks, 4, GetParam());
    comm.setDeadline(500ms);
    ccl::FaultInjector injector;
    ccl::FaultInjector::Fault fault;
    fault.rank = kKilled;
    fault.action = ccl::FaultInjector::Action::kKill;
    fault.at_op = 5;
    injector.arm(fault);
    comm.setFaultInjector(&injector);

    const topo::RingEmbedding ring = topo::makeSequentialRing(kRanks);
    ccl::RankBuffers buffers(kRanks);
    for (auto& b : buffers)
        b.assign(kRanks, 1.0f);

    bool caught = false;
    try {
        ccl::ringAllReduce(comm, buffers, ring);
    } catch (const ccl::CollectiveError& error) {
        caught = true;
        const ccl::CollectiveError::Info& info = error.info();
        EXPECT_EQ(info.failed_rank, kKilled);
        // The wait-for chain must name the killed rank as terminus —
        // in a ring every blocked rank's upstream edge leads there.
        EXPECT_EQ(info.chain_terminus, kKilled) << info.stall_chain;
        EXPECT_GE(info.chain_len, 1) << info.stall_chain;
        EXPECT_NE(info.stall_chain.find("r9 killed"),
                  std::string::npos)
            << info.stall_chain;
        // The human-facing report carries the same chain.
        const std::string report = ccl::formatStallReport(info);
        EXPECT_NE(report.find("=== ccl stall report ==="),
                  std::string::npos);
        EXPECT_NE(report.find("terminus r9"), std::string::npos)
            << report;
    }
    EXPECT_TRUE(caught) << "collective completed despite kill";
    comm.clearAbort();
}

INSTANTIATE_TEST_SUITE_P(
    Modes, StallReportE2e,
    ::testing::Values(ccl::RankExecutor::Mode::kPersistent,
                      ccl::RankExecutor::Mode::kSpawnPerCall,
                      ccl::RankExecutor::Mode::kStateMachine),
    [](const auto& info) {
        switch (info.param) {
        case ccl::RankExecutor::Mode::kPersistent:
            return "Persistent";
        case ccl::RankExecutor::Mode::kSpawnPerCall:
            return "SpawnPerCall";
        case ccl::RankExecutor::Mode::kStateMachine:
            return "StateMachine";
        }
        return "Unknown";
    });

} // namespace
} // namespace ccube
