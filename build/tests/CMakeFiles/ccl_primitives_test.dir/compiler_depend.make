# Empty compiler generated dependencies file for ccl_primitives_test.
# This may be replaced when dependencies are built.
