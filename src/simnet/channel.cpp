#include "simnet/channel.h"

#include <algorithm>
#include <string>

#include "obs/trace.h"
#include "util/logging.h"

namespace ccube {
namespace simnet {

Network::Network(sim::Simulation& simulation, const topo::Graph& graph,
                 double bandwidth_scale)
    : sim_(simulation), graph_(graph), bandwidth_scale_(bandwidth_scale)
{
    CCUBE_CHECK(bandwidth_scale > 0.0, "bandwidth scale must be positive");
    channel_state_.resize(static_cast<std::size_t>(graph.channelCount()));
    resources_.reserve(static_cast<std::size_t>(graph.channelCount()));
    for (int id = 0; id < graph.channelCount(); ++id) {
        const topo::ChannelDesc& desc = graph.channel(id);
        resources_.push_back(std::make_unique<sim::FifoResource>(
            simulation, graph.nodeLabel(desc.src) + "->" +
                            graph.nodeLabel(desc.dst) + "#" +
                            std::to_string(id)));
        resources_.back()->setTraceIdentity(
            obs::pids::simNode(desc.src), id);
        pair_channels_[(static_cast<std::uint64_t>(
                            static_cast<std::uint32_t>(desc.src))
                        << 32) |
                       static_cast<std::uint32_t>(desc.dst)]
            .push_back(id);
    }
    announceTraceTopology();

    obs::Monitor& monitor = obs::Monitor::global();
    if (monitor.enabled()) {
        monitor_ = &monitor;
        monitor_cursor_.assign(
            static_cast<std::size_t>(graph.channelCount()), 0);
        monitor_token_ = monitor.addSource(
            [this](double t_s,
                   std::vector<std::pair<std::string, double>>& out) {
                sampleMonitorGauges(t_s, out);
            });
    }
}

Network::~Network()
{
    if (monitor_)
        monitor_->removeSource(monitor_token_);
}

void
Network::sampleMonitorGauges(
    double t_s, std::vector<std::pair<std::string, double>>& out)
{
    // Gauge names depend only on the channel id, so they are built
    // once per worker thread and shared by every Network that thread
    // simulates — the per-heartbeat path never formats strings.
    static thread_local std::vector<std::pair<std::string, std::string>>
        names;
    while (names.size() <
           static_cast<std::size_t>(graph_.channelCount())) {
        const std::string base =
            "chan." + std::to_string(names.size());
        names.emplace_back(base + ".busy_frac", base + ".queue");
    }

    const double window = t_s - monitor_last_t_;
    for (int id = 0; id < graph_.channelCount(); ++id) {
        const sim::FifoResource& res =
            *resources_[static_cast<std::size_t>(id)];
        const auto& intervals = res.busyIntervals();
        std::size_t& cursor =
            monitor_cursor_[static_cast<std::size_t>(id)];
        double busy = 0.0;
        // Intervals are in grant order and non-overlapping (unit
        // capacity), so one forward cursor per channel amortizes the
        // walk to O(total grants) across all snapshots; an interval
        // straddling t_s is left for the next window to finish.
        for (std::size_t i = cursor; i < intervals.size(); ++i) {
            const auto& [start, end] = intervals[i];
            if (start >= t_s)
                break;
            busy += std::min(end, t_s) - std::max(start,
                                                  monitor_last_t_);
            if (end <= t_s)
                cursor = i + 1;
            else
                break;
        }
        const std::size_t queue = res.queueLength();
        if (busy <= 0.0 && queue == 0)
            continue; // idle channel: keep the snapshot row sparse
        const auto& name_pair = names[static_cast<std::size_t>(id)];
        if (window > 0.0)
            out.emplace_back(name_pair.first, busy / window);
        if (queue > 0)
            out.emplace_back(name_pair.second,
                             static_cast<double>(queue));
    }
    monitor_last_t_ = t_s;
}

const std::vector<int>&
Network::pairChannels(topo::NodeId src, topo::NodeId dst) const
{
    const auto it = pair_channels_.find(
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
         << 32) |
        static_cast<std::uint32_t>(dst));
    CCUBE_CHECK(it != pair_channels_.end(),
                "no channel " << src << " → " << dst);
    return it->second;
}

void
Network::announceTraceTopology() const
{
    obs::TraceRecorder& recorder = obs::TraceRecorder::global();
    if (!recorder.enabled())
        return;
    for (int id = 0; id < graph_.channelCount(); ++id) {
        const topo::ChannelDesc& desc = graph_.channel(id);
        recorder.setProcessName(obs::pids::simNode(desc.src),
                                "simnet node " +
                                    graph_.nodeLabel(desc.src));
        recorder.setThreadName(obs::pids::simNode(desc.src), id,
                               resources_[static_cast<std::size_t>(id)]
                                   ->name());
    }
}

void
Network::closeTraceEpoch(double run_end) const
{
    obs::TraceRecorder& recorder = obs::TraceRecorder::global();
    if (recorder.enabled())
        recorder.advanceSimEpoch(run_end * 1e6);
}

void
Network::transferOnChannel(int channel_id, double bytes, DoneFn done,
                           double latency_factor)
{
    CCUBE_CHECK(channel_id >= 0 &&
                    channel_id < static_cast<int>(resources_.size()),
                "bad channel id " << channel_id);
    CCUBE_CHECK(bytes > 0.0, "non-positive transfer size");
    if (channel_state_[static_cast<std::size_t>(channel_id)].failed) {
        // Dead link: the transfer is lost and its completion callback
        // never fires, so everything downstream of it stalls — the
        // DES analog of traffic into a failed NVLink. The schedule
        // ends with pending arrivals; see partialResult().
        ++dropped_transfers_;
        dropped_bytes_ += bytes;
        obs::TraceRecorder& recorder = obs::TraceRecorder::global();
        if (recorder.enabled()) {
            const topo::ChannelDesc& desc = graph_.channel(channel_id);
            recorder.instantEvent("fault.transfer_dropped",
                                  "simnet.fault",
                                  obs::pids::simNode(desc.src),
                                  channel_id,
                                  recorder.simOffsetUs() +
                                      sim_.now() * 1e6);
        }
        return;
    }
    const double hold = occupancy(channel_id, bytes, latency_factor);
    net_bytes_ += bytes;
    ++net_transfers_;
    resources_[static_cast<std::size_t>(channel_id)]->request(
        [hold]() { return hold; }, std::move(done), bytes);
}

void
Network::transfer(topo::NodeId src, topo::NodeId dst, double bytes,
                  DoneFn done, int lane, double latency_factor)
{
    const std::vector<int>& ids = pairChannels(src, dst);
    const int pick = std::clamp(lane, 0, static_cast<int>(ids.size()) - 1);
    transferOnChannel(ids[static_cast<std::size_t>(pick)], bytes,
                      std::move(done), latency_factor);
}

double
Network::channelBusyTime(int channel_id) const
{
    CCUBE_CHECK(channel_id >= 0 &&
                    channel_id < static_cast<int>(resources_.size()),
                "bad channel id " << channel_id);
    return resources_[static_cast<std::size_t>(channel_id)]->busyTime();
}

std::uint64_t
Network::channelGrants(int channel_id) const
{
    CCUBE_CHECK(channel_id >= 0 &&
                    channel_id < static_cast<int>(resources_.size()),
                "bad channel id " << channel_id);
    return resources_[static_cast<std::size_t>(channel_id)]->grants();
}

double
Network::channelBytes(int channel_id) const
{
    CCUBE_CHECK(channel_id >= 0 &&
                    channel_id < static_cast<int>(resources_.size()),
                "bad channel id " << channel_id);
    return resources_[static_cast<std::size_t>(channel_id)]
        ->totalPayload();
}

const util::RunningStats&
Network::channelQueueWait(int channel_id) const
{
    CCUBE_CHECK(channel_id >= 0 &&
                    channel_id < static_cast<int>(resources_.size()),
                "bad channel id " << channel_id);
    return resources_[static_cast<std::size_t>(channel_id)]
        ->queueWaitStats();
}

const std::vector<std::pair<double, double>>&
Network::channelBusyIntervals(int channel_id) const
{
    CCUBE_CHECK(channel_id >= 0 &&
                    channel_id < static_cast<int>(resources_.size()),
                "bad channel id " << channel_id);
    return resources_[static_cast<std::size_t>(channel_id)]
        ->busyIntervals();
}

void
Network::exportMetrics(obs::MetricRegistry& registry, double horizon,
                       const std::string& prefix) const
{
    CCUBE_CHECK(horizon > 0.0, "metrics horizon must be positive");
    for (int id = 0; id < graph_.channelCount(); ++id) {
        const sim::FifoResource& res =
            *resources_[static_cast<std::size_t>(id)];
        if (res.grants() == 0)
            continue; // channel unused by the embedding
        const std::string base =
            prefix + ".channel." + std::to_string(id);
        const double utilization = res.busyTime() / horizon;
        registry.setGauge(base + ".bytes", res.totalPayload());
        registry.setGauge(base + ".busy_s", res.busyTime());
        registry.setGauge(base + ".grants",
                          static_cast<double>(res.grants()));
        registry.setGauge(base + ".utilization", utilization);
        registry.mergeHistogram(prefix + ".queue_wait_s",
                                res.queueWaitStats());
        registry.observe(prefix + ".channel_utilization", utilization);
    }
    registry.setGauge(prefix + ".horizon_s", horizon);
    if (dropped_transfers_ > 0) {
        registry.setGauge(prefix + ".dropped_transfers",
                          static_cast<double>(dropped_transfers_));
        registry.setGauge(prefix + ".dropped_bytes", dropped_bytes_);
    }
}

double
Network::occupancy(int channel_id, double bytes,
                   double latency_factor) const
{
    const topo::ChannelDesc& desc = graph_.channel(channel_id);
    const double factor =
        channel_state_[static_cast<std::size_t>(channel_id)].factor;
    return desc.latency * latency_factor +
           bytes / (desc.bandwidth * bandwidth_scale_ * factor);
}

void
Network::failChannel(int channel_id)
{
    CCUBE_CHECK(channel_id >= 0 &&
                    channel_id < static_cast<int>(resources_.size()),
                "bad channel id " << channel_id);
    channel_state_[static_cast<std::size_t>(channel_id)].failed = true;
    obs::TraceRecorder& recorder = obs::TraceRecorder::global();
    if (recorder.enabled()) {
        const topo::ChannelDesc& desc = graph_.channel(channel_id);
        // Endpoints ride along as args so root-cause analysis can
        // blame the starved receiver even when the channel never
        // carried traffic (no timeline to parse endpoints from).
        obs::TraceEvent event;
        event.name = "fault.channel_fail";
        event.cat = "simnet.fault";
        event.phase = 'i';
        event.pid = obs::pids::simNode(desc.src);
        event.tid = channel_id;
        event.ts_us = recorder.simOffsetUs() + sim_.now() * 1e6;
        event.args.emplace_back("src", static_cast<double>(desc.src));
        event.args.emplace_back("dst", static_cast<double>(desc.dst));
        recorder.record(std::move(event));
    }
}

void
Network::restoreChannel(int channel_id)
{
    CCUBE_CHECK(channel_id >= 0 &&
                    channel_id < static_cast<int>(resources_.size()),
                "bad channel id " << channel_id);
    channel_state_[static_cast<std::size_t>(channel_id)].failed = false;
    obs::TraceRecorder& recorder = obs::TraceRecorder::global();
    if (recorder.enabled()) {
        const topo::ChannelDesc& desc = graph_.channel(channel_id);
        recorder.instantEvent("fault.channel_restore", "simnet.fault",
                              obs::pids::simNode(desc.src), channel_id,
                              recorder.simOffsetUs() +
                                  sim_.now() * 1e6);
    }
}

void
Network::setChannelBandwidthFactor(int channel_id, double factor)
{
    CCUBE_CHECK(channel_id >= 0 &&
                    channel_id < static_cast<int>(resources_.size()),
                "bad channel id " << channel_id);
    CCUBE_CHECK(factor > 0.0, "bandwidth factor must be positive");
    channel_state_[static_cast<std::size_t>(channel_id)].factor *=
        factor;
    obs::TraceRecorder& recorder = obs::TraceRecorder::global();
    if (recorder.enabled() && factor != 1.0) {
        const topo::ChannelDesc& desc = graph_.channel(channel_id);
        obs::TraceEvent event;
        event.name = "fault.channel_degrade";
        event.cat = "simnet.fault";
        event.phase = 'i';
        event.pid = obs::pids::simNode(desc.src);
        event.tid = channel_id;
        event.ts_us = recorder.simOffsetUs() + sim_.now() * 1e6;
        event.args.emplace_back("factor", factor);
        recorder.record(std::move(event));
    }
}

void
Network::slowNode(topo::NodeId node, double factor)
{
    CCUBE_CHECK(factor > 0.0, "bandwidth factor must be positive");
    for (int id = 0; id < graph_.channelCount(); ++id) {
        const topo::ChannelDesc& desc = graph_.channel(id);
        if (desc.src == node || desc.dst == node)
            setChannelBandwidthFactor(id, factor);
    }
}

bool
Network::channelFailed(int channel_id) const
{
    CCUBE_CHECK(channel_id >= 0 &&
                    channel_id < static_cast<int>(resources_.size()),
                "bad channel id " << channel_id);
    return channel_state_[static_cast<std::size_t>(channel_id)].failed;
}

double
Network::channelBandwidthFactor(int channel_id) const
{
    CCUBE_CHECK(channel_id >= 0 &&
                    channel_id < static_cast<int>(resources_.size()),
                "bad channel id " << channel_id);
    return channel_state_[static_cast<std::size_t>(channel_id)].factor;
}

} // namespace simnet
} // namespace ccube
