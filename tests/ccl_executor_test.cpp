/**
 * @file
 * Tests for the persistent RankExecutor: thread reuse across
 * back-to-back collectives (the whole point — no per-collective
 * spawning), correct results under every AllReduce algorithm on both
 * execution engines, exception propagation out of rank bodies with the
 * executor left usable, and the obs-exported telemetry.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "ccl/communicator.h"
#include "ccl/double_tree_allreduce.h"
#include "ccl/executor.h"
#include "ccl/overlapped_tree_allreduce.h"
#include "ccl/ring_allreduce.h"
#include "ccl/tree_allreduce.h"
#include "obs/context.h"
#include "topo/detour_router.h"
#include "topo/dgx1.h"
#include "topo/double_tree.h"
#include "topo/ring_embedding.h"
#include "topo/tree_embedding.h"
#include "util/rng.h"

namespace ccube {
namespace {

constexpr int kRanks = 8;
constexpr int kElems = 64;
constexpr int kChunks = 4;

struct Topologies {
    topo::Graph dgx1 = topo::makeDgx1();
    topo::RingEmbedding ring = topo::findHamiltonianRing(dgx1, kRanks);
    topo::TreeEmbedding tree =
        topo::embedTree(dgx1, topo::BinaryTree::inorder(kRanks));
    topo::DoubleTreeEmbedding double_tree =
        topo::makeDgx1DoubleTree(dgx1);
};

ccl::RankBuffers
randomBuffers(util::Rng& rng, std::vector<float>& expected)
{
    ccl::RankBuffers buffers(kRanks);
    expected.assign(kElems, 0.0f);
    for (auto& b : buffers) {
        b.resize(kElems);
        rng.fill(b, -1.0f, 1.0f);
        for (int i = 0; i < kElems; ++i)
            expected[static_cast<std::size_t>(i)] +=
                b[static_cast<std::size_t>(i)];
    }
    return buffers;
}

void
expectAllReduced(const ccl::RankBuffers& buffers,
                 const std::vector<float>& expected)
{
    for (int rank = 0; rank < kRanks; ++rank) {
        for (int i = 0; i < kElems; ++i) {
            EXPECT_NEAR(
                buffers[static_cast<std::size_t>(rank)]
                       [static_cast<std::size_t>(i)],
                expected[static_cast<std::size_t>(i)], 1e-4f)
                << "rank " << rank << " elem " << i;
        }
    }
}

/** Runs one collective of each algorithm, verifying the sums. */
void
runAllAlgorithms(ccl::Communicator& comm, const Topologies& topo,
                 util::Rng& rng)
{
    std::vector<float> expected;
    {
        ccl::RankBuffers buffers = randomBuffers(rng, expected);
        ccl::ringAllReduce(comm, buffers, topo.ring);
        expectAllReduced(buffers, expected);
    }
    {
        ccl::RankBuffers buffers = randomBuffers(rng, expected);
        ccl::treeAllReduce(comm, buffers, topo.tree, kChunks,
                           ccl::TreePhaseMode::kTwoPhase);
        expectAllReduced(buffers, expected);
    }
    {
        ccl::RankBuffers buffers = randomBuffers(rng, expected);
        ccl::overlappedTreeAllReduce(comm, buffers, topo.tree, kChunks);
        expectAllReduced(buffers, expected);
    }
    {
        ccl::RankBuffers buffers = randomBuffers(rng, expected);
        ccl::doubleTreeAllReduce(comm, buffers, topo.double_tree,
                                 kChunks, ccl::TreePhaseMode::kOverlapped);
        expectAllReduced(buffers, expected);
    }
}

TEST(RankExecutor, PersistentModeAllAlgorithmsCorrect)
{
    const Topologies topo;
    ccl::Communicator comm(kRanks, 4,
                           ccl::RankExecutor::Mode::kPersistent);
    util::Rng rng(11);
    runAllAlgorithms(comm, topo, rng);
}

TEST(RankExecutor, SpawnModeAllAlgorithmsCorrect)
{
    const Topologies topo;
    ccl::Communicator comm(kRanks, 4,
                           ccl::RankExecutor::Mode::kSpawnPerCall);
    util::Rng rng(12);
    runAllAlgorithms(comm, topo, rng);
}

TEST(RankExecutor, NoThreadGrowthAcrossBackToBackRingCollectives)
{
    // The ring uses no helpers, so the thread census is exact: the
    // eight parked rank mains and nothing else, forever.
    const Topologies topo;
    ccl::Communicator comm(kRanks, 4,
                           ccl::RankExecutor::Mode::kPersistent);
    util::Rng rng(13);
    std::vector<float> expected;
    for (int iter = 0; iter < 10; ++iter) {
        ccl::RankBuffers buffers = randomBuffers(rng, expected);
        ccl::ringAllReduce(comm, buffers, topo.ring);
        expectAllReduced(buffers, expected);
        EXPECT_EQ(comm.executor().threadCount(), kRanks);
        EXPECT_EQ(comm.executor().helperCount(), 0);
    }
}

/** Forwarding rules hosted on @p rank (helpers one collective needs). */
int
forwarderCount(const topo::TreeEmbedding& embedding, int rank)
{
    int count = 0;
    for (const topo::ForwardingRule& rule :
         topo::cachedForwardingRules(embedding, 0))
        if (rule.transit == rank)
            ++count;
    return count;
}

TEST(RankExecutor, HelperPoolBoundedAcrossBackToBackCollectives)
{
    // Helpers are created only when concurrent demand exceeds the
    // historical peak, so the thread census must stay bounded by the
    // worst-case per-rank demand of the algorithm suite — independent
    // of how many collectives run — while tasksExecuted keeps growing
    // linearly. That is the "no per-collective thread" property.
    const Topologies topo;
    ccl::Communicator comm(kRanks, 4,
                           ccl::RankExecutor::Mode::kPersistent);
    util::Rng rng(13);

    int bound = kRanks; // parked rank mains
    for (int r = 0; r < kRanks; ++r) {
        // Overlapped single tree: forwarders + one reducer.
        const int single = forwarderCount(topo.tree, r) + 1;
        // Double tree: the tree1 body plus, per tree, forwarders and
        // one overlapped reducer.
        const int dbl = 1 + forwarderCount(topo.double_tree.tree0, r) +
                        forwarderCount(topo.double_tree.tree1, r) + 2;
        bound += std::max(single, dbl);
    }

    constexpr int kIters = 10;
    for (int iter = 0; iter < kIters; ++iter) {
        runAllAlgorithms(comm, topo, rng);
        EXPECT_LE(comm.executor().threadCount(), bound);
    }
    // 4 collectives per iteration, at least one task per rank each.
    EXPECT_GE(comm.executor().tasksExecuted(),
              static_cast<std::int64_t>(kIters) * 4 * kRanks);
}

TEST(RankExecutor, TasksExecutedAdvances)
{
    ccl::Communicator comm(kRanks, 4,
                           ccl::RankExecutor::Mode::kPersistent);
    const std::int64_t before = comm.executor().tasksExecuted();
    comm.run([](int) {});
    EXPECT_GE(comm.executor().tasksExecuted(), before + kRanks);
}

TEST(RankExecutor, RankBodyExceptionPropagatesAndExecutorSurvives)
{
    const Topologies topo;
    ccl::Communicator comm(kRanks, 4,
                           ccl::RankExecutor::Mode::kPersistent);

    EXPECT_THROW(comm.run([](int rank) {
                     if (rank == 3)
                         throw std::runtime_error("rank body failed");
                 }),
                 std::runtime_error);

    // The executor (and its parked threads) must remain usable.
    util::Rng rng(14);
    runAllAlgorithms(comm, topo, rng);
}

TEST(RankExecutor, HelperExceptionPropagatesThroughGroup)
{
    ccl::RankExecutor executor(2,
                               ccl::RankExecutor::Mode::kPersistent);
    executor.run([&](int rank) {
        if (rank != 0)
            return;
        ccl::RankExecutor::Group group;
        executor.submit(group, rank, "test", []() {
            throw std::logic_error("helper failed");
        });
        EXPECT_THROW(group.wait(), std::logic_error);
    });
}

TEST(RankExecutor, ExecutorTelemetryExportedViaObs)
{
    obs::RankCounters& counters = obs::RankCounters::global();
    counters.reset();
    ccl::Communicator comm(kRanks, 4,
                           ccl::RankExecutor::Mode::kPersistent);
    // Force executor creation and wait until rank 0's worker has
    // parked at least once, so the next dispatch is a guaranteed
    // park→unpark transition.
    comm.executor();
    for (int i = 0; i < 2000 && counters.executorParks(0) == 0; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_GT(counters.executorParks(0), 0u);

    comm.run([](int) {});
    EXPECT_GT(counters.executorTasks(0), 0u);
    EXPECT_GT(counters.executorUnparks(0), 0u);
}

} // namespace
} // namespace ccube
