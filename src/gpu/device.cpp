#include "gpu/device.h"

#include "util/logging.h"

namespace ccube {
namespace gpu {

Device::Device(int id, dnn::GpuComputeParams params)
    : id_(id), params_(params)
{
    CCUBE_CHECK(id >= 0, "negative device id");
}

void
Device::hostForwardingKernels(int count, double tax_per_kernel)
{
    CCUBE_CHECK(count >= 0, "negative kernel count");
    CCUBE_CHECK(tax_per_kernel >= 0.0 && tax_per_kernel < 1.0,
                "tax per kernel out of range");
    tax_ += count * tax_per_kernel;
    CCUBE_CHECK(tax_ < 1.0, "forwarding kernels consume the whole GPU");
}

dnn::ComputeModel
Device::computeModel() const
{
    dnn::GpuComputeParams residual = params_;
    residual.efficiency = params_.efficiency * (1.0 - tax_);
    return dnn::ComputeModel(residual);
}

double
Device::computeSlowdown() const
{
    return 1.0 / (1.0 - tax_);
}

} // namespace gpu
} // namespace ccube
