#include "ccl/algorithm_tasks.h"

#include <span>
#include <string>
#include <utility>

#include "ccl/fault.h"
#include "obs/trace.h"
#include "topo/detour_router.h"
#include "util/logging.h"

namespace ccube {
namespace ccl {

namespace {

using topo::NodeId;
using topo::PhaseDirection;
using topo::Route;

/**
 * Blocked-op disposition for the task classes: under Simple the task
 * parks on the mailbox semaphore (woken by the peer's post); under LL
 * no semaphore will ever be posted, so the task polls the abort epoch
 * (a dead peer still unwedges the batch via the watchdog) and asks to
 * be rescheduled.
 */
StepStatus
awaitArrival(StepContext& ctx, Mailbox& box, Protocol proto)
{
    if (proto == Protocol::kLL) {
        abortPoll();
        return StepStatus::kContinue;
    }
    return ctx.parkOnArrival(box);
}

StepStatus
awaitFreeSlot(StepContext& ctx, Mailbox& box, Protocol proto)
{
    if (proto == Protocol::kLL) {
        abortPoll();
        return StepStatus::kContinue;
    }
    return ctx.parkOnFreeSlot(box);
}

/**
 * Trace span for resumable tasks. obs::ScopedSpan assumes a phase
 * runs start-to-finish on one OS thread; a task parks and migrates
 * across pool workers mid-phase, so the start stamp lives in task
 * state instead and one complete event is emitted at phase end with
 * explicit timestamps. Track 0 keeps every phase of a rank on a
 * single trace row regardless of which worker executed it.
 */
class PhaseSpan
{
  public:
    /** Stamps the phase start (no-op while tracing is disabled). */
    void begin()
    {
        obs::TraceRecorder& recorder = obs::TraceRecorder::global();
        start_us_ = recorder.enabled() ? recorder.wallNowUs() : -1.0;
    }

    /** Emits the complete event; a no-op without a matching begin. */
    void end(std::string_view name, int rank)
    {
        if (start_us_ < 0.0)
            return;
        obs::TraceRecorder& recorder = obs::TraceRecorder::global();
        if (recorder.enabled())
            recorder.completeEvent(name, "ccl.allreduce",
                                   obs::pids::cclRank(rank),
                                   /*tid=*/0, start_us_,
                                   recorder.wallNowUs() - start_us_);
        start_us_ = -1.0;
    }

  private:
    double start_us_ = -1.0;
};

/**
 * Resumable form of the ring body (ring_allreduce.cpp /
 * primitives.cpp): alternating send/recv steps with the same chunk
 * index formulas, one kContinue per completed pipeline step.
 */
class RingTask final : public RankTask
{
  public:
    RingTask(int rank, int pos, int p, std::span<float> buffer,
             const ChunkSplit& split, Mailbox& to_next,
             Mailbox& from_prev, RingPhase phase, AllReduceTrace* trace,
             Protocol proto, SkipMask resume)
        : RankTask(rank, "ring"), pos_(pos), p_(p), buffer_(buffer),
          split_(split), to_next_(to_next), from_prev_(from_prev),
          phase_(phase), trace_(trace), proto_(proto),
          resume_(std::move(resume))
    {
        if (phase_ == RingPhase::kAllGather)
            state_ = St::kAgSend;
        // Phase spans only for the full AllReduce, matching the
        // thread body (the one-phase primitives trace nothing).
        if (phase_ == RingPhase::kAllReduce)
            span_.begin();
    }

    StepStatus step(StepContext& ctx) override
    {
        for (;;) {
            switch (state_) {
              case St::kRsSend: {
                if (s_ >= p_ - 1) {
                    finishReduceScatter();
                    break;
                }
                const int chunk = (pos_ - s_ + p_) % p_;
                // Resumed chunk: already final everywhere, both ends
                // of the hop skip it (same id per step on each side).
                if (resume_.done(chunk)) {
                    state_ = St::kRsRecv;
                    break;
                }
                if (!op_begun_) {
                    to_next_.noteOpBegin(Mailbox::OpKind::kSend);
                    op_begun_ = true;
                }
                if (!to_next_.trySend(
                        split_.slice(std::span<const float>(buffer_),
                                     chunk),
                        chunk, proto_))
                    return awaitFreeSlot(ctx, to_next_, proto_);
                op_begun_ = false;
                state_ = St::kRsRecv;
                break;
              }
              case St::kRsRecv: {
                const int chunk = (pos_ - s_ - 1 + p_) % p_;
                if (resume_.done(chunk)) {
                    ++s_;
                    state_ = St::kRsSend;
                    break;
                }
                if (!op_begun_) {
                    from_prev_.noteOpBegin(Mailbox::OpKind::kRecv);
                    op_begun_ = true;
                }
                int tag = -1;
                if (!from_prev_.tryRecvReduce(
                        split_.slice(buffer_, chunk), &tag, proto_))
                    return awaitArrival(ctx, from_prev_, proto_);
                op_begun_ = false;
                CCUBE_CHECK(tag == chunk,
                            "ring chunk out of sequence");
                ++s_;
                state_ = St::kRsSend;
                return StepStatus::kContinue;
              }
              case St::kAgSend: {
                if (s_ >= p_ - 1) {
                    if (phase_ == RingPhase::kAllReduce)
                        span_.end("ring.allgather", rank());
                    state_ = St::kDone;
                    break;
                }
                const int chunk = (pos_ + 1 - s_ + p_) % p_;
                if (resume_.done(chunk)) {
                    state_ = St::kAgRecv;
                    break;
                }
                if (!op_begun_) {
                    to_next_.noteOpBegin(Mailbox::OpKind::kSend);
                    op_begun_ = true;
                }
                if (!to_next_.trySend(
                        split_.slice(std::span<const float>(buffer_),
                                     chunk),
                        chunk, proto_))
                    return awaitFreeSlot(ctx, to_next_, proto_);
                op_begun_ = false;
                state_ = St::kAgRecv;
                break;
              }
              case St::kAgRecv: {
                const int chunk = (pos_ - s_ + p_) % p_;
                if (resume_.done(chunk)) {
                    ++s_;
                    state_ = St::kAgSend;
                    break;
                }
                if (!op_begun_) {
                    from_prev_.noteOpBegin(Mailbox::OpKind::kRecv);
                    op_begun_ = true;
                }
                int tag = -1;
                if (!from_prev_.tryRecvInto(
                        split_.slice(buffer_, chunk), &tag, proto_))
                    return awaitArrival(ctx, from_prev_, proto_);
                op_begun_ = false;
                CCUBE_CHECK(tag == chunk,
                            "ring chunk out of sequence");
                if (phase_ == RingPhase::kAllReduce && trace_)
                    trace_->record(rank(), chunk);
                ++s_;
                state_ = St::kAgSend;
                return StepStatus::kContinue;
              }
              case St::kDone:
                return StepStatus::kDone;
            }
        }
    }

  private:
    enum class St { kRsSend, kRsRecv, kAgSend, kAgRecv, kDone };

    void finishReduceScatter()
    {
        if (phase_ == RingPhase::kReduceScatter) {
            state_ = St::kDone;
            return;
        }
        // This rank now owns the fully reduced chunk at ring position
        // (pos+1) mod P — same completion point as the thread body.
        if (trace_ && !resume_.done((pos_ + 1) % p_))
            trace_->record(rank(), (pos_ + 1) % p_);
        span_.end("ring.reduce_scatter", rank());
        span_.begin();
        s_ = 0;
        state_ = St::kAgSend;
    }

    const int pos_;
    const int p_;
    const std::span<float> buffer_;
    const ChunkSplit split_;
    Mailbox& to_next_;
    Mailbox& from_prev_;
    const RingPhase phase_;
    AllReduceTrace* const trace_;
    const Protocol proto_;
    const SkipMask resume_;

    St state_ = St::kRsSend;
    int s_ = 0;
    bool op_begun_ = false;
    PhaseSpan span_;
};

/**
 * Resumable form of detail::treeRankBody and the one-direction tree
 * primitives. One task covers one pipeline of one rank:
 *   - Role::kReduce — the reduction pipeline (at the AllReduce root it
 *     also records completion and, depending on the phase mode, fans
 *     the reduced chunk out to the children inline or in a tail loop);
 *   - Role::kBroadcast — the broadcast pipeline (the root variant
 *     sends its own buffer down, the treeBroadcast primitive);
 *   - Role::kBoth — two-phase non-root: reduction chained into
 *     broadcast in the same task, matching the sequential thread body.
 * Overlapped non-root ranks get one kReduce and one kBroadcast task —
 * the state-machine analog of the pooled reducer + inline broadcaster.
 */
class TreeTask final : public RankTask
{
  public:
    enum class Role { kReduce, kBroadcast, kBoth };

    struct Plan {
        Plan(std::span<float> buffer, const ChunkSplit& split)
            : buffer(buffer), split(split)
        {
        }

        std::span<float> buffer;
        ChunkSplit split;
        bool is_root = false;
        bool root_broadcasts = false; ///< AllReduce root fans out
        TreePhaseMode mode = TreePhaseMode::kTwoPhase;
        Mailbox* up_parent = nullptr;
        Mailbox* down_parent = nullptr;
        std::vector<Mailbox*> up_children;
        std::vector<Mailbox*> down_children;
        AllReduceTrace* trace = nullptr;
        int chunk_offset = 0;
        Protocol proto = Protocol::kSimple;
        /** Local chunk ids this tree still moves, in pipeline order —
         *  all of them on a fresh run, the not-yet-final subset on a
         *  supervised retry. Every rank derives the same list from the
         *  same mask, so tags stay matched hop by hop. */
        std::vector<int> chunks;
    };

    TreeTask(int rank, const char* label, Role role, Plan plan)
        : RankTask(rank, label), role_(role), plan_(std::move(plan))
    {
        // Span placement mirrors detail::treeRankBody: the reduction
        // and non-root broadcast pipelines each get a span; the
        // two-phase root's tail fan-out (kRootSend) traces nothing.
        if (role_ == Role::kBroadcast) {
            state_ = plan_.is_root ? St::kRootSend : St::kBcastRecv;
            if (!plan_.is_root)
                span_.begin();
        } else {
            span_.begin();
        }
        // Everything already final (a retry with a full checkpoint):
        // the pipeline has no chunks to move.
        if (plan_.chunks.empty())
            state_ = St::kDone;
    }

    StepStatus step(StepContext& ctx) override
    {
        for (;;) {
            switch (state_) {
              case St::kReduceRecv: {
                if (child_ >= plan_.up_children.size()) {
                    child_ = 0;
                    if (!plan_.is_root) {
                        state_ = St::kReduceSendUp;
                        break;
                    }
                    if (plan_.trace)
                        plan_.trace->record(
                            rank(), plan_.chunk_offset + chunkId());
                    if (plan_.root_broadcasts &&
                        plan_.mode == TreePhaseMode::kOverlapped) {
                        state_ = St::kInlineBcast;
                        break;
                    }
                    if (!advanceReduceChunk())
                        break;
                    return StepStatus::kContinue;
                }
                Mailbox& box = *plan_.up_children[child_];
                if (!op_begun_) {
                    box.noteOpBegin(Mailbox::OpKind::kRecv);
                    op_begun_ = true;
                }
                int tag = -1;
                if (!box.tryRecvReduce(
                        plan_.split.slice(plan_.buffer, chunkId()),
                        &tag, plan_.proto))
                    return awaitArrival(ctx, box, plan_.proto);
                op_begun_ = false;
                CCUBE_CHECK(tag == chunkId(),
                            "reduction chunk out of order");
                ++child_;
                break;
              }
              case St::kReduceSendUp: {
                if (!op_begun_) {
                    plan_.up_parent->noteOpBegin(Mailbox::OpKind::kSend);
                    op_begun_ = true;
                }
                if (!plan_.up_parent->trySend(constSlice(chunkId()),
                                              chunkId(), plan_.proto))
                    return awaitFreeSlot(ctx, *plan_.up_parent,
                                         plan_.proto);
                op_begun_ = false;
                if (!advanceReduceChunk())
                    break;
                return StepStatus::kContinue;
              }
              case St::kInlineBcast: {
                // Overlapped root: chunk fans out the moment it is
                // fully reduced, then the reduction pipeline resumes.
                if (child_ >= plan_.down_children.size()) {
                    child_ = 0;
                    if (!advanceReduceChunk())
                        break;
                    return StepStatus::kContinue;
                }
                if (!trySendChild(ctx, chunkId()))
                    return blocked_status_;
                break;
              }
              case St::kRootSend: {
                // Two-phase root tail / treeBroadcast root: push own
                // buffer down chunk by chunk.
                if (child_ >= plan_.down_children.size()) {
                    child_ = 0;
                    ++chunk_;
                    if (chunk_ >= activeCount()) {
                        state_ = St::kDone;
                        break;
                    }
                    return StepStatus::kContinue;
                }
                if (!trySendChild(ctx, chunkId()))
                    return blocked_status_;
                break;
              }
              case St::kBcastRecv: {
                Mailbox& box = *plan_.down_parent;
                if (!op_begun_) {
                    box.noteOpBegin(Mailbox::OpKind::kRecv);
                    op_begun_ = true;
                }
                int tag = -1;
                if (!box.tryRecvInto(
                        plan_.split.slice(plan_.buffer, chunkId()),
                        &tag, plan_.proto))
                    return awaitArrival(ctx, box, plan_.proto);
                op_begun_ = false;
                CCUBE_CHECK(tag == chunkId(),
                            "broadcast chunk out of order");
                if (plan_.trace)
                    plan_.trace->record(rank(),
                                        plan_.chunk_offset + chunkId());
                state_ = St::kBcastSendDown;
                break;
              }
              case St::kBcastSendDown: {
                if (child_ >= plan_.down_children.size()) {
                    child_ = 0;
                    ++chunk_;
                    if (chunk_ >= activeCount()) {
                        span_.end("tree.broadcast", rank());
                        state_ = St::kDone;
                        break;
                    }
                    state_ = St::kBcastRecv;
                    return StepStatus::kContinue;
                }
                if (!trySendChild(ctx, chunkId()))
                    return blocked_status_;
                break;
              }
              case St::kDone:
                return StepStatus::kDone;
            }
        }
    }

  private:
    enum class St {
        kReduceRecv,
        kReduceSendUp,
        kInlineBcast,
        kRootSend,
        kBcastRecv,
        kBcastSendDown,
        kDone,
    };

    std::span<const float> constSlice(int chunk) const
    {
        return plan_.split.slice(
            std::span<const float>(plan_.buffer), chunk);
    }

    /** Chunks this pipeline still moves (plan_.chunks entries). */
    int activeCount() const
    {
        return static_cast<int>(plan_.chunks.size());
    }

    /** Local chunk id at pipeline position chunk_. */
    int chunkId() const
    {
        return plan_.chunks[static_cast<std::size_t>(chunk_)];
    }

    /** Sends chunk @p chunk to down_children[child_]; false = blocked
     *  (the caller must return blocked_status_: kParked under Simple,
     *  kContinue under LL where parking is impossible; a racing post
     *  already turned the park into an immediate retry via the loop). */
    bool trySendChild(StepContext& ctx, int chunk)
    {
        Mailbox& box = *plan_.down_children[child_];
        if (!op_begun_) {
            box.noteOpBegin(Mailbox::OpKind::kSend);
            op_begun_ = true;
        }
        if (!box.trySend(constSlice(chunk), chunk, plan_.proto)) {
            const StepStatus blocked =
                awaitFreeSlot(ctx, box, plan_.proto);
            if (blocked == StepStatus::kParked ||
                plan_.proto == Protocol::kLL) {
                blocked_status_ = blocked;
                return false;
            }
            return true; // raced in: retry the send on the next loop
        }
        op_begun_ = false;
        ++child_;
        return true;
    }

    /** Advances the reduction pipeline to the next chunk; returns
     *  false when the reduction is over (state_ already moved on). */
    bool advanceReduceChunk()
    {
        ++chunk_;
        if (chunk_ < activeCount()) {
            state_ = St::kReduceRecv;
            return true;
        }
        chunk_ = 0;
        child_ = 0;
        span_.end("tree.reduce", rank());
        if (plan_.is_root && plan_.root_broadcasts &&
            plan_.mode == TreePhaseMode::kTwoPhase) {
            state_ = St::kRootSend;
            return false;
        }
        if (role_ == Role::kBoth) {
            span_.begin();
            state_ = St::kBcastRecv;
            return false;
        }
        state_ = St::kDone;
        return false;
    }

    const Role role_;
    Plan plan_;

    St state_ = St::kReduceRecv;
    int chunk_ = 0;
    std::size_t child_ = 0;
    bool op_begun_ = false;
    StepStatus blocked_status_ = StepStatus::kParked;
    PhaseSpan span_;
};

/**
 * Resumable detour forwarder (the forwardLoop/forwardChunks helper
 * threads): peek the upstream chunk in place, send it downstream, then
 * release the upstream receive buffer — still zero staging copies.
 */
class ForwardTask final : public RankTask
{
  public:
    ForwardTask(int transit, int upstream, int downstream, Mailbox& in,
                Mailbox& out, int num_chunks, Protocol proto)
        : RankTask(transit, "forward"), in_(in), out_(out),
          num_chunks_(num_chunks), proto_(proto),
          span_name_("tree.forward " + std::to_string(upstream) +
                     "->" + std::to_string(downstream))
    {
        span_.begin();
    }

    StepStatus step(StepContext& ctx) override
    {
        for (;;) {
            switch (state_) {
              case St::kAwaitChunk: {
                if (chunk_ >= num_chunks_) {
                    span_.end(span_name_, rank());
                    state_ = St::kDone;
                    break;
                }
                if (!in_begun_) {
                    in_.noteOpBegin(Mailbox::OpKind::kRecv);
                    in_begun_ = true;
                }
                std::span<const float> data;
                int tag = -1;
                if (!in_.tryPeek(&data, &tag, proto_))
                    return awaitArrival(ctx, in_, proto_);
                state_ = St::kSendOn;
                break;
              }
              case St::kSendOn: {
                std::span<const float> data;
                int tag = -1;
                const bool have = in_.tryPeek(&data, &tag, proto_);
                CCUBE_CHECK(have, "claimed forward chunk vanished");
                if (!out_begun_) {
                    out_.noteOpBegin(Mailbox::OpKind::kSend);
                    out_begun_ = true;
                }
                if (!out_.trySend(data, tag, proto_))
                    return awaitFreeSlot(ctx, out_, proto_);
                in_.releaseFront();
                in_begun_ = false;
                out_begun_ = false;
                ++chunk_;
                state_ = St::kAwaitChunk;
                return StepStatus::kContinue;
              }
              case St::kDone:
                return StepStatus::kDone;
            }
        }
    }

  private:
    enum class St { kAwaitChunk, kSendOn, kDone };

    Mailbox& in_;
    Mailbox& out_;
    const int num_chunks_;
    const Protocol proto_;

    St state_ = St::kAwaitChunk;
    int chunk_ = 0;
    bool in_begun_ = false;
    bool out_begun_ = false;
    const std::string span_name_;
    PhaseSpan span_;
};

} // namespace

std::vector<std::unique_ptr<RankTask>>
buildRingTasks(Communicator& comm, RankBuffers& buffers,
               const topo::RingEmbedding& ring, RingPhase phase,
               AllReduceTrace* trace, Protocol proto,
               const SkipMask& resume)
{
    const int p = comm.numRanks();
    const ChunkSplit split(buffers[0].size(), p);

    std::vector<int> position(static_cast<std::size_t>(p), -1);
    for (int pos = 0; pos < p; ++pos)
        position[static_cast<std::size_t>(
            ring.order[static_cast<std::size_t>(pos)])] = pos;

    std::vector<std::unique_ptr<RankTask>> tasks;
    tasks.reserve(static_cast<std::size_t>(p));
    for (int rank = 0; rank < p; ++rank) {
        const int pos = position[static_cast<std::size_t>(rank)];
        const int next =
            ring.order[static_cast<std::size_t>((pos + 1) % p)];
        const int prev =
            ring.order[static_cast<std::size_t>((pos + p - 1) % p)];
        tasks.push_back(std::make_unique<RingTask>(
            rank, pos, p,
            std::span<float>(buffers[static_cast<std::size_t>(rank)]),
            split, comm.mailbox(rank, next, kFlowRing),
            comm.mailbox(prev, rank, kFlowRing), phase, trace,
            proto, resume));
    }
    return tasks;
}

void
appendTreeTasks(std::vector<std::unique_ptr<RankTask>>& out,
                Communicator& comm, RankBuffers& buffers,
                const topo::TreeEmbedding& embedding,
                std::size_t region_offset, std::size_t region_size,
                const ChunkSplit& split, TreePhaseMode mode,
                TreeFlowIds flows, TreeDirection direction,
                AllReduceTrace* trace, int chunk_id_offset,
                const char* label, Protocol proto,
                const SkipMask& resume)
{
    const topo::BinaryTree& tree = embedding.tree;
    const int p = comm.numRanks();
    const int num_chunks = split.count();
    const bool want_reduce = direction != TreeDirection::kBroadcast;
    const bool want_bcast = direction != TreeDirection::kReduce;

    // Active chunk list: the local chunk ids this tree still moves.
    // Every rank (and every forwarder) derives the same list from the
    // same global mask, so the pipelines stay in lockstep and tags
    // match hop by hop even when a retry skips finished chunks.
    std::vector<int> active;
    active.reserve(static_cast<std::size_t>(num_chunks));
    for (int c = 0; c < num_chunks; ++c)
        if (!resume.done(chunk_id_offset + c))
            active.push_back(c);
    const int active_count = static_cast<int>(active.size());

    // Detour forwarders of this tree, filtered to the direction(s) in
    // play — the task analog of submitForwarders / the helpers group.
    for (const topo::ForwardingRule& rule :
         topo::cachedForwardingRules(embedding, /*tree_index=*/0)) {
        const bool reduction =
            rule.phase == PhaseDirection::kReduction;
        if (reduction ? !want_reduce : !want_bcast)
            continue;
        const FlowId flow =
            reduction ? flows.reduce : flows.broadcast;
        out.push_back(std::make_unique<ForwardTask>(
            rule.transit, rule.upstream, rule.downstream,
            comm.mailbox(rule.upstream, rule.transit, flow),
            comm.mailbox(rule.transit, rule.downstream, flow),
            active_count, proto));
    }

    for (int rank = 0; rank < p; ++rank) {
        TreeTask::Plan plan(
            std::span<float>(buffers[static_cast<std::size_t>(rank)])
                .subspan(region_offset, region_size),
            split);
        plan.is_root = tree.root() == rank;
        plan.root_broadcasts =
            direction == TreeDirection::kAllReduce;
        plan.mode = mode;
        plan.trace =
            direction == TreeDirection::kAllReduce ? trace : nullptr;
        plan.chunk_offset = chunk_id_offset;
        plan.proto = proto;
        plan.chunks = active;

        if (!plan.is_root) {
            const Route& route = embedding.routeToChild(rank);
            const NodeId parent_hop =
                route.hops[route.hops.size() - 2];
            if (want_reduce)
                plan.up_parent =
                    &comm.mailbox(rank, parent_hop, flows.reduce);
            if (want_bcast)
                plan.down_parent = &comm.mailbox(parent_hop, rank,
                                                 flows.broadcast);
        }
        for (NodeId child : tree.children(rank)) {
            const NodeId hop = embedding.routeToChild(child).hops[1];
            if (want_reduce)
                plan.up_children.push_back(
                    &comm.mailbox(hop, rank, flows.reduce));
            if (want_bcast)
                plan.down_children.push_back(
                    &comm.mailbox(rank, hop, flows.broadcast));
        }

        switch (direction) {
          case TreeDirection::kReduce:
            out.push_back(std::make_unique<TreeTask>(
                rank, label, TreeTask::Role::kReduce,
                std::move(plan)));
            break;
          case TreeDirection::kBroadcast:
            out.push_back(std::make_unique<TreeTask>(
                rank, label, TreeTask::Role::kBroadcast,
                std::move(plan)));
            break;
          case TreeDirection::kAllReduce:
            if (plan.is_root) {
                out.push_back(std::make_unique<TreeTask>(
                    rank, label, TreeTask::Role::kReduce,
                    std::move(plan)));
            } else if (mode == TreePhaseMode::kTwoPhase) {
                out.push_back(std::make_unique<TreeTask>(
                    rank, label, TreeTask::Role::kBoth,
                    std::move(plan)));
            } else {
                // Overlapped non-root: concurrent reducer and
                // broadcaster pipelines, one task each (the thread
                // mode's pooled reducer + inline broadcaster).
                TreeTask::Plan bcast_plan = plan;
                out.push_back(std::make_unique<TreeTask>(
                    rank, "reduce", TreeTask::Role::kReduce,
                    std::move(plan)));
                out.push_back(std::make_unique<TreeTask>(
                    rank, label, TreeTask::Role::kBroadcast,
                    std::move(bcast_plan)));
            }
            break;
        }
    }
}

std::vector<std::unique_ptr<RankTask>>
buildDoubleTreeTasks(Communicator& comm, RankBuffers& buffers,
                     const topo::DoubleTreeEmbedding& embedding,
                     int chunks_per_tree, TreePhaseMode mode,
                     AllReduceTrace& trace, Protocol proto,
                     const SkipMask& resume)
{
    const std::size_t total = buffers[0].size();
    const std::size_t half = total / 2;
    const ChunkSplit split0(half, chunks_per_tree);
    const ChunkSplit split1(total - half, chunks_per_tree);

    std::vector<std::unique_ptr<RankTask>> tasks;
    appendTreeTasks(tasks, comm, buffers, embedding.tree0,
                    /*region_offset=*/0, half, split0, mode,
                    TreeFlowIds{kFlowTree0Reduce, kFlowTree0Broadcast},
                    TreeDirection::kAllReduce, &trace,
                    /*chunk_id_offset=*/0, "tree0", proto, resume);
    appendTreeTasks(tasks, comm, buffers, embedding.tree1,
                    /*region_offset=*/half, total - half, split1, mode,
                    TreeFlowIds{kFlowTree1Reduce, kFlowTree1Broadcast},
                    TreeDirection::kAllReduce, &trace,
                    /*chunk_id_offset=*/chunks_per_tree, "tree1",
                    proto, resume);
    return tasks;
}

} // namespace ccl
} // namespace ccube
