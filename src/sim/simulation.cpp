#include "sim/simulation.h"

#include <chrono>

#include "obs/metrics.h"

namespace ccube {
namespace sim {

Time
Simulation::run()
{
    obs::MetricRegistry& registry = obs::MetricRegistry::global();
    if (!registry.enabled())
        return queue_.run();

    const std::uint64_t before = queue_.executedCount();
    const auto start = std::chrono::steady_clock::now();
    const Time end = queue_.run();
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    const double events =
        static_cast<double>(queue_.executedCount() - before);
    registry.addCounter("sim.events", events);
    if (elapsed.count() > 0.0 && events > 0.0)
        registry.observe("sim.events_per_sec",
                         events / elapsed.count());
    return end;
}

void
Simulation::after(Time delay, EventFn fn, int priority)
{
    queue_.schedule(queue_.now() + delay, std::move(fn), priority);
}

void
Simulation::at(Time when, EventFn fn, int priority)
{
    queue_.schedule(when, std::move(fn), priority);
}

void
Simulation::addStat(const std::string& name, double delta)
{
    stats_[name] += delta;
}

double
Simulation::stat(const std::string& name) const
{
    auto it = stats_.find(name);
    return it == stats_.end() ? 0.0 : it->second;
}

void
Simulation::reset()
{
    queue_.reset();
    stats_.clear();
}

} // namespace sim
} // namespace ccube
