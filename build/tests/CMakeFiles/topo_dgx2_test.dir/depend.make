# Empty dependencies file for topo_dgx2_test.
# This may be replaced when dependencies are built.
