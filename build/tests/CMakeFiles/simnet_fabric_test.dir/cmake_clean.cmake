file(REMOVE_RECURSE
  "CMakeFiles/simnet_fabric_test.dir/simnet_fabric_test.cpp.o"
  "CMakeFiles/simnet_fabric_test.dir/simnet_fabric_test.cpp.o.d"
  "simnet_fabric_test"
  "simnet_fabric_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simnet_fabric_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
