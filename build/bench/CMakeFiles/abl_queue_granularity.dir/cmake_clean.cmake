file(REMOVE_RECURSE
  "CMakeFiles/abl_queue_granularity.dir/abl_queue_granularity.cpp.o"
  "CMakeFiles/abl_queue_granularity.dir/abl_queue_granularity.cpp.o.d"
  "abl_queue_granularity"
  "abl_queue_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_queue_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
