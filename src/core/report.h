#ifndef CCUBE_CORE_REPORT_H_
#define CCUBE_CORE_REPORT_H_

/**
 * @file
 * Report helpers shared by the benchmark harnesses: uniform table
 * rows for iteration results and communication schedules.
 */

#include <string>
#include <vector>

#include "core/iteration_scheduler.h"
#include "util/table.h"

namespace ccube {

namespace obs {
class TraceAnalyzer;
struct CriticalPath;
}

namespace core {

/** Column headers for iteration-result tables. */
util::Table makeIterationTable();

/** Appends one iteration result as a row. */
void addIterationRow(util::Table& table, const std::string& workload,
                     const std::string& bandwidth, int batch, Mode mode,
                     const IterationResult& result);

/** Column headers for communication-schedule tables. */
util::Table makeCommTable();

/** Appends one communication result as a row. */
void addCommRow(util::Table& table, const std::string& algorithm,
                double bytes, const simnet::ScheduleResult& schedule);

/**
 * Column headers for channel-class utilization tables (one row per
 * direction class of a schedule — e.g. the up- and down-channels of a
 * tree — from a trace analysis).
 */
util::Table makeChannelClassTable();

/**
 * Appends the aggregate utilization of @p channel_ids (a direction
 * class of @p schedule) over the analyzer's channel window. Channels
 * that carried no traffic are skipped, matching
 * obs::TraceAnalyzer::idleFraction.
 */
void addChannelClassRow(util::Table& table, const std::string& schedule,
                        const std::string& channel_class,
                        const obs::TraceAnalyzer& analyzer,
                        const std::vector<int>& channel_ids);

/**
 * Column headers for latency-quantile tables (one row per labeled
 * sample set — e.g. recovery times across fault scenarios).
 */
util::Table makeQuantileTable();

/**
 * Appends count/min/p50/p90/p99/max of @p samples_ms as a row.
 * Sorts @p samples_ms in place (one sort serves every quantile —
 * no per-quantile copies).
 */
void addQuantileRow(util::Table& table, const std::string& label,
                    std::vector<double>& samples_ms);

/** Column headers for critical-path cost-breakdown tables. */
util::Table makeCostBreakdownTable();

/** Appends one extracted critical path's attribution as a row. */
void addCostBreakdownRow(util::Table& table, const std::string& label,
                         const obs::CriticalPath& path);

} // namespace core
} // namespace ccube

#endif // CCUBE_CORE_REPORT_H_
