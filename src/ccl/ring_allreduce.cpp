#include "ccl/ring_allreduce.h"

#include <span>

#include "ccl/algorithm_tasks.h"
#include "obs/context.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace ccube {
namespace ccl {

AllReduceTrace
ringAllReduce(Communicator& comm, RankBuffers& buffers,
              const topo::RingEmbedding& ring,
              AllReduceTrace::Observer observer, Protocol proto,
              const SkipMask& resume)
{
    const int p = comm.numRanks();
    CCUBE_CHECK(static_cast<int>(buffers.size()) == p,
                "one buffer per rank required");
    CCUBE_CHECK(ring.size() == p, "ring/communicator size mismatch");
    for (const auto& b : buffers) {
        CCUBE_CHECK(b.size() == buffers[0].size(),
                    "all buffers must be equally sized");
    }

    AllReduceTrace trace(p);
    trace.setObserver(std::move(observer));

    if (comm.engineMode() == RankExecutor::Mode::kStateMachine) {
        comm.runTasks(buildRingTasks(comm, buffers, ring,
                                     RingPhase::kAllReduce, &trace,
                                     proto, resume),
                      "ring_allreduce", proto);
        return trace;
    }

    const ChunkSplit split(buffers[0].size(), p);

    // Position of each rank on the logical ring.
    std::vector<int> position(static_cast<std::size_t>(p), -1);
    for (int pos = 0; pos < p; ++pos)
        position[static_cast<std::size_t>(
            ring.order[static_cast<std::size_t>(pos)])] = pos;

    comm.run([&](int rank) {
        std::span<float> buffer(buffers[static_cast<std::size_t>(rank)]);
        const int pos = position[static_cast<std::size_t>(rank)];
        const int next =
            ring.order[static_cast<std::size_t>((pos + 1) % p)];
        const int prev =
            ring.order[static_cast<std::size_t>((pos + p - 1) % p)];
        Mailbox& to_next = comm.mailbox(rank, next, kFlowRing);
        Mailbox& from_prev = comm.mailbox(prev, rank, kFlowRing);

        // Reduce-Scatter: after step s the chunk received in that step
        // carries partial sums from s+1 ranks; after P−1 steps each
        // position owns one fully reduced chunk. Resumed chunks are
        // skipped on BOTH ends: sender and matched receiver compute
        // the same chunk id per step, so the mailbox FIFO stays in
        // lockstep across ranks.
        {
            obs::ScopedSpan span("ring.reduce_scatter",
                                 "ccl.allreduce",
                                 obs::pids::cclRank(rank),
                                 obs::threadTrack());
            for (int s = 0; s < p - 1; ++s) {
                const int send_chunk = (pos - s + p) % p;
                const int recv_chunk = (pos - s - 1 + p) % p;
                if (!resume.done(send_chunk))
                    to_next.send(
                        split.slice(std::span<const float>(buffer),
                                    send_chunk),
                        send_chunk, proto);
                if (!resume.done(recv_chunk)) {
                    const int tag = from_prev.recvReduce(
                        split.slice(buffer, recv_chunk), proto);
                    CCUBE_CHECK(tag == recv_chunk,
                                "ring chunk out of sequence");
                }
            }
        }
        // This rank now owns the fully reduced chunk at ring position
        // (pos+1) mod P — the first chunk available here.
        const int owned = (pos + 1) % p;
        if (!resume.done(owned))
            trace.record(rank, owned);

        // AllGather: circulate the fully reduced chunks.
        {
            obs::ScopedSpan span("ring.allgather", "ccl.allreduce",
                                 obs::pids::cclRank(rank),
                                 obs::threadTrack());
            for (int s = 0; s < p - 1; ++s) {
                const int send_chunk = (pos + 1 - s + p) % p;
                const int recv_chunk = (pos - s + p) % p;
                if (!resume.done(send_chunk))
                    to_next.send(
                        split.slice(std::span<const float>(buffer),
                                    send_chunk),
                        send_chunk, proto);
                if (!resume.done(recv_chunk)) {
                    const int tag = from_prev.recvInto(
                        split.slice(buffer, recv_chunk), proto);
                    CCUBE_CHECK(tag == recv_chunk,
                                "ring chunk out of sequence");
                    trace.record(rank, recv_chunk);
                }
            }
        }
    }, "ring_allreduce");
    return trace;
}

} // namespace ccl
} // namespace ccube
