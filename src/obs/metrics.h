#ifndef CCUBE_OBS_METRICS_H_
#define CCUBE_OBS_METRICS_H_

/**
 * @file
 * Named metrics — counters, gauges, and histograms — with CSV/JSON
 * export.
 *
 * Histograms are util::RunningStats accumulators, so every sample
 * stream gets count/mean/min/max/stddev for free. The registry is
 * pull-oriented: hot paths keep cheap local state (atomics, per-object
 * accumulators) and export into a registry at the end of a run; only
 * warm paths write through the registry's mutex directly.
 *
 * The global registry is gated by enable(): instrumentation that would
 * otherwise add per-event map lookups checks `enabled()` first, so an
 * un-observed run pays one relaxed atomic load per site.
 */

#include <atomic>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/histogram.h"
#include "util/stats.h"

namespace ccube {
namespace obs {

/**
 * Thread-safe registry of named counters, gauges, and histograms.
 */
class MetricRegistry
{
  public:
    MetricRegistry() = default;
    MetricRegistry(const MetricRegistry&) = delete;
    MetricRegistry& operator=(const MetricRegistry&) = delete;

    /**
     * The registry instrumentation writes through: the process-wide
     * instance, unless the calling thread has an active
     * ScopedMetricsRedirect (per-task capture in sweep::run()).
     */
    static MetricRegistry& global();

    /** The process-wide instance, ignoring any thread redirect. */
    static MetricRegistry& process();

    /**
     * Merges @p other into this registry as if its writes had happened
     * here: counters add, gauges overwrite (last writer wins, matching
     * sequential-run semantics), histograms merge. Ignores the
     * enabled() gate. @p other is left unchanged.
     */
    void absorb(const MetricRegistry& other);

    /** Opens the gate for instrumentation that writes through here. */
    void enable() { enabled_.store(true, std::memory_order_release); }

    /** Closes the gate (accumulated metrics are kept). */
    void disable() { enabled_.store(false, std::memory_order_release); }

    /** True when instrumentation should export into this registry. */
    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Adds @p delta to counter @p name (created at 0). */
    void addCounter(const std::string& name, double delta);

    /** Counter value; 0 when never written. */
    double counter(const std::string& name) const;

    /** Sets gauge @p name to @p value. */
    void setGauge(const std::string& name, double value);

    /** Gauge value; 0 when never set. */
    double gauge(const std::string& name) const;

    /** True when the gauge has been set. */
    bool hasGauge(const std::string& name) const;

    /** Adds one sample to histogram @p name. */
    void observe(const std::string& name, double sample);

    /** Merges @p stats into histogram @p name. */
    void mergeHistogram(const std::string& name,
                        const util::RunningStats& stats);

    /** Histogram accumulator; empty stats when never observed. */
    util::RunningStats histogram(const std::string& name) const;

    /**
     * Adds one sample to quantile histogram @p name — the
     * LogHistogram-backed kind for hot counters whose p50/p99/p999
     * matter. Bounded memory, deterministic under sweep:: absorb.
     */
    void observeQuantile(const std::string& name, double sample);

    /** Merges @p histogram into quantile histogram @p name. */
    void mergeQuantileHistogram(const std::string& name,
                                const LogHistogram& histogram);

    /** Quantile histogram; empty histogram when never observed. */
    LogHistogram quantileHistogram(const std::string& name) const;

    /** All metric names, sorted, with their kind. */
    std::vector<std::pair<std::string, std::string>> names() const;

    /** Drops every metric (the gate is left as-is). */
    void clear();

    /**
     * Writes one row per metric:
     * `name,kind,count,value,mean,min,max,stddev`. Counters and gauges
     * fill `value`; histograms fill the sample-statistics columns.
     */
    void writeCsv(std::ostream& out) const;

    /** Writes the same content as a JSON object keyed by name. */
    void writeJson(std::ostream& out) const;

  private:
    std::atomic<bool> enabled_{false};
    mutable std::mutex mutex_;
    std::map<std::string, double> counters_;
    std::map<std::string, double> gauges_;
    std::map<std::string, util::RunningStats> histograms_;
    std::map<std::string, LogHistogram> quantile_histograms_;
};

/**
 * RAII thread-local redirect: while alive, MetricRegistry::global()
 * on this thread returns @p registry instead of the process instance.
 * Nests; a null registry is a no-op.
 */
class ScopedMetricsRedirect
{
  public:
    explicit ScopedMetricsRedirect(MetricRegistry* registry);
    ~ScopedMetricsRedirect();

    ScopedMetricsRedirect(const ScopedMetricsRedirect&) = delete;
    ScopedMetricsRedirect&
    operator=(const ScopedMetricsRedirect&) = delete;

  private:
    MetricRegistry* previous_ = nullptr;
    bool active_ = false;
};

} // namespace obs
} // namespace ccube

#endif // CCUBE_OBS_METRICS_H_
