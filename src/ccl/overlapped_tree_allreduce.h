#ifndef CCUBE_CCL_OVERLAPPED_TREE_ALLREDUCE_H_
#define CCUBE_CCL_OVERLAPPED_TREE_ALLREDUCE_H_

/**
 * @file
 * Convenience wrapper for the overlapped tree AllReduce (C1).
 */

#include "ccl/tree_allreduce.h"

namespace ccube {
namespace ccl {

/** Tree AllReduce with reduction-broadcast chaining (paper C1). */
AllReduceTrace
overlappedTreeAllReduce(Communicator& comm, RankBuffers& buffers,
                        const topo::TreeEmbedding& embedding,
                        int num_chunks, TreeFlowIds flows = {},
                        Protocol proto = Protocol::kSimple,
                        AllReduceTrace::Observer observer = {},
                        const SkipMask& resume = {});

} // namespace ccl
} // namespace ccube

#endif // CCUBE_CCL_OVERLAPPED_TREE_ALLREDUCE_H_
