#ifndef CCUBE_CCL_MAILBOX_H_
#define CCUBE_CCL_MAILBOX_H_

/**
 * @file
 * P2P chunk mailbox: the receive-buffer abstraction between ranks.
 *
 * Models the per-channel receive buffers that the paper's persistent
 * kernels manage with device-side semaphores: a bounded single-
 * producer / single-consumer ring of float chunks. Flow control uses
 * exactly the post/wait protocol of Fig. 11.
 */

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "ccl/sync_primitives.h"

namespace ccube {
namespace ccl {

/**
 * Bounded SPSC queue of float chunks with an integer tag.
 */
class Mailbox
{
  public:
    /** Creates a mailbox with @p slots receive buffers. */
    explicit Mailbox(int slots);

    Mailbox(const Mailbox&) = delete;
    Mailbox& operator=(const Mailbox&) = delete;

    /**
     * Copies @p data into the next free slot (blocking while all
     * receive buffers are occupied) and posts its arrival.
     */
    void send(std::span<const float> data, int tag = 0);

    /**
     * Blocks until a chunk arrives, copies it into @p out (resized),
     * frees the receive buffer, and returns the tag.
     */
    int recv(std::vector<float>& out);

    /**
     * Receives directly into @p out by element-wise assignment;
     * the incoming chunk must have exactly out.size() elements.
     */
    int recvInto(std::span<float> out);

    /**
     * Receives and element-wise accumulates into @p out (the reduction
     * step of AllReduce); sizes must match. Returns the tag.
     */
    int recvReduce(std::span<float> out);

    /** Number of receive buffers. */
    int slots() const { return static_cast<int>(ring_.size()); }

    /** Total chunks delivered (for telemetry/tests). */
    std::int64_t delivered() const { return delivered_.value(); }

    /**
     * Names this mailbox for trace spans (e.g. "mb 0->1/f2", set by
     * the Communicator at creation). Post/wait spans then carry the
     * label; an unlabeled mailbox still traces as "mb ?".
     */
    void setTraceLabel(std::string label);

  private:
    struct Slot {
        std::vector<float> data;
        int tag = 0;
    };

    /** Runs @p consume on the arrived slot, then releases it. */
    template <typename Fn>
    int consumeSlot(Fn&& consume);

    std::vector<Slot> ring_;
    BoundedSemaphore full_;
    BoundedSemaphore empty_;
    std::size_t head_ = 0; ///< producer cursor (producer thread only)
    std::size_t tail_ = 0; ///< consumer cursor (consumer thread only)
    CheckableCounter delivered_;
    std::string trace_label_ = "mb ?";
};

} // namespace ccl
} // namespace ccube

#endif // CCUBE_CCL_MAILBOX_H_
