#ifndef CCUBE_DNN_SHAPES_H_
#define CCUBE_DNN_SHAPES_H_

/**
 * @file
 * Layer shape descriptors with parameter and FLOP calculators.
 *
 * The workload models (ZFNet / VGG-16 / ResNet-50, §V-A) are built
 * from these shapes so that per-layer parameter sizes and compute
 * times — the inputs to gradient queuing and Fig. 16/17 — derive from
 * the real architectures rather than hand-entered constants.
 */

#include <cstdint>

namespace ccube {
namespace dnn {

/** 2-D convolution over square feature maps. */
struct ConvShape {
    int in_channels = 0;
    int out_channels = 0;
    int kernel = 0;
    int stride = 1;
    int padding = 0;
    int in_size = 0; ///< input spatial side (square)

    /** Output spatial side: (in + 2·pad − k)/stride + 1. */
    int outSize() const;

    /** Weights + bias. */
    std::int64_t params() const;

    /** Multiply-accumulate FLOPs for one sample (2 per MAC). */
    std::int64_t flopsPerSample() const;

    /** Output activation elements for one sample. */
    std::int64_t outputElemsPerSample() const;
};

/** Fully connected layer. */
struct FcShape {
    int in_features = 0;
    int out_features = 0;

    std::int64_t params() const;
    std::int64_t flopsPerSample() const;
    std::int64_t outputElemsPerSample() const;
};

/** Max/avg pooling (no parameters). */
struct PoolShape {
    int channels = 0;
    int kernel = 0;
    int stride = 0;
    int in_size = 0;

    int outSize() const;
    std::int64_t flopsPerSample() const;
    std::int64_t outputElemsPerSample() const;
};

/** Embedding table lookup (memory-bound, parameters not all-reduced
 *  densely in practice). */
struct EmbeddingShape {
    std::int64_t rows = 0;
    int dim = 0;
    int lookups_per_sample = 1;

    std::int64_t params() const;
    std::int64_t flopsPerSample() const;
    std::int64_t outputElemsPerSample() const;
};

} // namespace dnn
} // namespace ccube

#endif // CCUBE_DNN_SHAPES_H_
