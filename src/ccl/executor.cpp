#include "ccl/executor.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <thread>
#include <utility>

#include "ccl/fault.h"
#include "obs/context.h"
#include "util/logging.h"

namespace ccube {
namespace ccl {

namespace {

/** Writes "rank<r>/<role>" into @p buf. */
void
formatRole(char* buf, std::size_t len, int rank, const char* role)
{
    std::snprintf(buf, len, "rank%d/%s", rank, role);
}

} // namespace

/**
 * One owned thread: a task slot guarded by a mutex/condvar. The thread
 * parks on the condvar between tasks — the host-side stand-in for a
 * persistent kernel spinning on its semaphore.
 */
struct RankExecutor::Worker {
    Worker(RankExecutor& owner_in, int rank_in)
        : owner(owner_in), rank(rank_in)
    {
    }

    RankExecutor& owner;
    const int rank;

    std::mutex mutex;
    std::condition_variable cv;
    std::function<void()> task;
    bool stop = false;

    std::thread thread;
};

/** Join state of one run(): a latch plus the first exception. */
struct RankExecutor::RunState {
    std::mutex mutex;
    std::condition_variable cv;
    int remaining = 0;
    std::exception_ptr error;

    void
    finish(std::exception_ptr err)
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (err && !error)
            error = err;
        if (--remaining == 0)
            cv.notify_all();
    }
};

RankExecutor::Mode
RankExecutor::defaultMode()
{
    static const Mode mode = []() {
        const char* env = std::getenv("CCUBE_CCL_EXECUTOR");
        if (env && std::strcmp(env, "spawn") == 0)
            return Mode::kSpawnPerCall;
        if (env && (std::strcmp(env, "statemachine") == 0 ||
                    std::strcmp(env, "sm") == 0))
            return Mode::kStateMachine;
        return Mode::kPersistent;
    }();
    return mode;
}

RankExecutor::Group::~Group()
{
    // A group abandoned without wait() would let helpers signal a dead
    // object; waiting here keeps misuse safe. Errors were either
    // observed by an explicit wait() or are swallowed (dtors must not
    // throw).
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&]() { return pending_ == 0; });
}

void
RankExecutor::Group::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&]() { return pending_ == 0; });
    if (error_) {
        std::exception_ptr err = error_;
        error_ = nullptr;
        lock.unlock();
        std::rethrow_exception(err);
    }
}

RankExecutor::RankExecutor(int num_ranks, Mode mode)
    : num_ranks_(num_ranks),
      mode_(mode),
      free_helpers_(static_cast<std::size_t>(num_ranks)),
      busy_helpers_(static_cast<std::size_t>(num_ranks), 0)
{
    CCUBE_CHECK(num_ranks >= 1, "executor needs at least one rank");
    // kStateMachine routes collectives through the shared task engine
    // before they ever reach run(); legacy blocking callers that still
    // land here get the persistent-thread treatment.
    if (mode_ == Mode::kSpawnPerCall)
        return;
    mains_.reserve(static_cast<std::size_t>(num_ranks));
    for (int r = 0; r < num_ranks; ++r) {
        mains_.push_back(std::make_unique<Worker>(*this, r));
        Worker& worker = *mains_.back();
        worker.thread =
            std::thread([this, &worker]() { workerLoop(worker); });
    }
}

RankExecutor::~RankExecutor()
{
    auto stopWorker = [](Worker& worker) {
        {
            std::lock_guard<std::mutex> lock(worker.mutex);
            worker.stop = true;
        }
        worker.cv.notify_one();
        if (worker.thread.joinable())
            worker.thread.join();
    };
    for (auto& worker : mains_)
        stopWorker(*worker);
    for (auto& worker : helpers_)
        stopWorker(*worker);
}

void
RankExecutor::workerLoop(Worker& worker)
{
    obs::setThreadRank(worker.rank);
    obs::RankCounters& counters = obs::RankCounters::global();
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(worker.mutex);
            if (!worker.task && !worker.stop) {
                counters.addExecutorPark();
                worker.cv.wait(lock, [&]() {
                    return worker.task || worker.stop;
                });
                counters.addExecutorUnpark();
            }
            if (worker.task) {
                task = std::move(worker.task);
                worker.task = nullptr;
            } else if (worker.stop) {
                return;
            }
        }
        if (task) {
            // Counted before the body so a finished run()/Group::wait()
            // (whose latch fires inside the task) never observes a
            // stale count.
            tasks_executed_.fetch_add(1, std::memory_order_relaxed);
            task();
        }
    }
}

void
RankExecutor::dispatch(Worker& worker, std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(worker.mutex);
        CCUBE_CHECK(!worker.task,
                    "executor worker for rank " << worker.rank
                                                << " already busy");
        worker.task = std::move(task);
    }
    worker.cv.notify_one();
}

void
RankExecutor::run(const std::function<void(int rank)>& body)
{
    CCUBE_CHECK(body, "executor run() needs a body");
    RunState state;
    state.remaining = num_ranks_;

    auto makeTask = [this, &state, &body](int r) {
        // &body and &state outlive the task: run() blocks on the latch
        // until every rank body has finished.
        return [this, &state, &body, r]() {
            obs::setThreadRank(r);
            char label[32];
            formatRole(label, sizeof(label), r, "main");
            obs::labelThread(label);
            obs::RankCounters::global().addExecutorTask();
            std::exception_ptr err;
            try {
                body(r);
            } catch (...) {
                err = std::current_exception();
            }
            state.finish(err);
        };
    };

    if (mode_ != Mode::kSpawnPerCall) {
        for (int r = 0; r < num_ranks_; ++r)
            dispatch(*mains_[static_cast<std::size_t>(r)], makeTask(r));
    } else {
        // Legacy path, kept for A/B benchmarking: fresh threads per
        // collective, the very cost the persistent mode amortizes.
        for (int r = 0; r < num_ranks_; ++r) {
            std::thread(makeTask(r)).detach();
            tasks_executed_.fetch_add(1, std::memory_order_relaxed);
        }
    }

    std::unique_lock<std::mutex> lock(state.mutex);
    state.cv.wait(lock, [&]() { return state.remaining == 0; });
    if (state.error)
        std::rethrow_exception(state.error);
}

RankExecutor::Worker&
RankExecutor::acquireHelper(int rank)
{
    std::lock_guard<std::mutex> lock(pool_mutex_);
    auto& free = free_helpers_[static_cast<std::size_t>(rank)];
    Worker* worker = nullptr;
    if (!free.empty()) {
        worker = free.back();
        free.pop_back();
    } else {
        helpers_.push_back(std::make_unique<Worker>(*this, rank));
        worker = helpers_.back().get();
        worker->thread =
            std::thread([this, worker]() { workerLoop(*worker); });
        helper_count_.fetch_add(1, std::memory_order_relaxed);
    }
    const int busy = ++busy_helpers_[static_cast<std::size_t>(rank)];
    obs::RankCounters::global().noteExecutorQueueDepth(
        rank, static_cast<std::uint64_t>(busy));
    return *worker;
}

void
RankExecutor::releaseHelper(Worker& worker)
{
    std::lock_guard<std::mutex> lock(pool_mutex_);
    free_helpers_[static_cast<std::size_t>(worker.rank)].push_back(
        &worker);
    --busy_helpers_[static_cast<std::size_t>(worker.rank)];
}

void
RankExecutor::submit(Group& group, int rank, const char* role,
                     std::function<void()> fn)
{
    CCUBE_CHECK(rank >= 0 && rank < num_ranks_,
                "bad helper rank " << rank);
    CCUBE_CHECK(fn, "executor submit() needs a task");
    // Helpers inherit the submitting thread's fault context so their
    // spins observe the same abort epoch as the rank body that spawned
    // them (otherwise an abort would unpark the mains but leave
    // forwarding helpers wedged).
    CommFaultContext* fault_ctx = CommFaultContext::current();
    {
        std::lock_guard<std::mutex> lock(group.mutex_);
        ++group.pending_;
    }

    auto finish = [&group](std::exception_ptr err) {
        std::lock_guard<std::mutex> lock(group.mutex_);
        if (err && !group.error_)
            group.error_ = err;
        if (--group.pending_ == 0)
            group.cv_.notify_all();
    };

    if (mode_ != Mode::kSpawnPerCall) {
        Worker& worker = acquireHelper(rank);
        dispatch(worker, [this, &worker, rank, role, fn = std::move(fn),
                          finish, fault_ctx]() {
            obs::setThreadRank(rank);
            ScopedFaultContext fault_scope(fault_ctx);
            char label[32];
            formatRole(label, sizeof(label), rank, role);
            obs::labelThread(label);
            obs::RankCounters::global().addExecutorTask();
            std::exception_ptr err;
            try {
                fn();
            } catch (...) {
                err = std::current_exception();
            }
            // Return to the pool before releasing the waiter so a
            // follow-up collective finds this thread free (no growth).
            releaseHelper(worker);
            finish(err);
        });
    } else {
        std::thread([rank, role, fn = std::move(fn), finish,
                     fault_ctx]() {
            obs::setThreadRank(rank);
            ScopedFaultContext fault_scope(fault_ctx);
            char label[32];
            formatRole(label, sizeof(label), rank, role);
            obs::labelThread(label);
            obs::RankCounters::global().addExecutorTask();
            std::exception_ptr err;
            try {
                fn();
            } catch (...) {
                err = std::current_exception();
            }
            finish(err);
        }).detach();
        tasks_executed_.fetch_add(1, std::memory_order_relaxed);
    }
}

int
RankExecutor::threadCount() const
{
    return static_cast<int>(mains_.size()) +
           helper_count_.load(std::memory_order_relaxed);
}

int
RankExecutor::helperCount() const
{
    return helper_count_.load(std::memory_order_relaxed);
}

std::int64_t
RankExecutor::tasksExecuted() const
{
    return tasks_executed_.load(std::memory_order_relaxed);
}

CommWatchdog::CommWatchdog()
{
    thread_ = std::thread([this]() { loop(); });
}

CommWatchdog::~CommWatchdog()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        armed_ = false;
        stop_ = true;
        ++generation_;
    }
    cv_.notify_all();
    if (thread_.joinable())
        thread_.join();
}

void
CommWatchdog::arm(std::chrono::nanoseconds deadline,
                  std::function<void()> on_expire)
{
    CCUBE_CHECK(on_expire, "watchdog needs an expiry callback");
    {
        std::lock_guard<std::mutex> lock(mutex_);
        CCUBE_CHECK(!armed_, "watchdog already armed");
        armed_ = true;
        fired_ = false;
        ++generation_;
        deadline_ = std::chrono::steady_clock::now() + deadline;
        on_expire_ = std::move(on_expire);
    }
    cv_.notify_all();
}

void
CommWatchdog::disarm()
{
    std::unique_lock<std::mutex> lock(mutex_);
    armed_ = false;
    ++generation_;
    cv_.notify_all();
    // An expiry callback that already started keeps running without
    // the lock; wait it out so the caller can rely on fired() and on
    // the callback's side effects being complete.
    cv_.wait(lock, [&]() { return !callback_running_; });
}

bool
CommWatchdog::fired() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return fired_;
}

void
CommWatchdog::loop()
{
    obs::labelThread("watchdog");
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        cv_.wait(lock, [&]() { return armed_ || stop_; });
        if (stop_)
            return;
        const std::uint64_t generation = generation_;
        const auto deadline = deadline_;
        const bool expired = !cv_.wait_until(lock, deadline, [&]() {
            return generation_ != generation || stop_;
        });
        if (!expired)
            continue; // disarmed (or stopping) before the deadline
        // Deadline passed while still armed: run the callback without
        // the lock so it may take other locks (abort state, tracing).
        std::function<void()> callback = std::move(on_expire_);
        on_expire_ = nullptr;
        armed_ = false;
        fired_ = true;
        callback_running_ = true;
        lock.unlock();
        callback();
        lock.lock();
        callback_running_ = false;
        cv_.notify_all();
    }
}

} // namespace ccl
} // namespace ccube
