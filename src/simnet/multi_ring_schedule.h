#ifndef CCUBE_SIMNET_MULTI_RING_SCHEDULE_H_
#define CCUBE_SIMNET_MULTI_RING_SCHEDULE_H_

/**
 * @file
 * Timed multi-ring AllReduce: the NCCL-style R baseline.
 *
 * NCCL stripes the buffer across several channel-disjoint logical
 * rings to use all NVLinks of each GPU. Ring r carries bytes
 * [r·N/R, (r+1)·N/R); global chunk ids are ring-major (ring r's P
 * slices occupy ids [r·P, (r+1)·P)). When two rings share a
 * double-link pair each rides its own physical channel.
 */

#include <vector>

#include "simnet/ring_schedule.h"

namespace ccube {
namespace simnet {

/**
 * Runs @p rings concurrently, striping @p total_bytes across them.
 */
ScheduleResult
runMultiRingSchedule(sim::Simulation& simulation, Network& network,
                     const std::vector<topo::RingEmbedding>& rings,
                     double total_bytes,
                     ccl::Protocol proto = ccl::Protocol::kSimple);

} // namespace simnet
} // namespace ccube

#endif // CCUBE_SIMNET_MULTI_RING_SCHEDULE_H_
