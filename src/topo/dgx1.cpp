#include "topo/dgx1.h"

#include <string>

#include "util/logging.h"

namespace ccube {
namespace topo {

namespace {

/** Unordered GPU pair with NVLink multiplicity. */
struct LinkSpec {
    int a;
    int b;
    int links;
};

// V100 DGX-1 hybrid mesh-cube (Li et al., "Evaluating Modern GPU
// Interconnect", cited as [35] by the paper). Two quads {0..3} and
// {4..7} with intra-quad meshes plus cube edges between them.
constexpr LinkSpec kDgx1Links[] = {
    {0, 1, 1}, {0, 2, 1}, {0, 3, 2}, {0, 4, 2},
    {1, 2, 2}, {1, 3, 1}, {1, 5, 2},
    {2, 3, 2}, {2, 6, 1},
    {3, 7, 1},
    {4, 5, 1}, {4, 6, 1}, {4, 7, 2},
    {5, 6, 2}, {5, 7, 1},
    {6, 7, 2},
};

} // namespace

Graph
makeDgx1(const Dgx1Params& params)
{
    CCUBE_CHECK(params.num_gpus == 8, "DGX-1 has exactly 8 GPUs");
    Graph graph("dgx1");
    for (int g = 0; g < params.num_gpus; ++g)
        graph.addNode("GPU" + std::to_string(g));

    int links_per_gpu[8] = {};
    for (const LinkSpec& spec : kDgx1Links) {
        for (int l = 0; l < spec.links; ++l) {
            graph.addLink(spec.a, spec.b, params.nvlink_bandwidth,
                          params.nvlink_latency, LinkKind::kNvlink);
        }
        links_per_gpu[spec.a] += spec.links;
        links_per_gpu[spec.b] += spec.links;
    }
    for (int g = 0; g < params.num_gpus; ++g) {
        CCUBE_CHECK(links_per_gpu[g] == kDgx1LinksPerGpu,
                    "GPU" << g << " has " << links_per_gpu[g]
                          << " NVLinks, want " << kDgx1LinksPerGpu);
    }

    if (params.with_host) {
        const NodeId host = graph.addNode("Host");
        CCUBE_CHECK(host == kDgx1Host, "host node id mismatch");
        for (int g = 0; g < params.num_gpus; ++g) {
            graph.addLink(g, host, params.pcie_bandwidth,
                          params.pcie_latency, LinkKind::kPcie);
        }
    }
    return graph;
}

} // namespace topo
} // namespace ccube
