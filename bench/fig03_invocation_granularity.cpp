/**
 * @file
 * Reproduces Fig. 3: NCCL AllReduce performance for one-shot vs
 * layer-wise vs slicing invocation granularity with ResNet-50
 * parameter sizes, normalized to the NVLink hardware peak.
 *
 * Paper shape: layer-wise ≈ 2× slower than one-shot; slicing > 4×.
 *
 * Two sections:
 *  1. Analytic — the paper's α/β invocation model (unchanged).
 *  2. Measured — the functional ccl runtime executing the same three
 *     granularities on the DGX-1 double tree, under both execution
 *     engines. The persistent rank executor is this codebase's analog
 *     of the paper's persistent kernels (§IV): it removes the
 *     per-invocation thread-spawn cost, so the fine-granularity
 *     slowdown narrows sharply versus the legacy spawn-per-collective
 *     engine. Results also land in BENCH_ccl.json (bench_ccl/v1).
 */

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "ccl/communicator.h"
#include "ccl/double_tree_allreduce.h"
#include "dnn/catalog.h"
#include "model/invocation_model.h"
#include "topo/dgx1.h"
#include "topo/double_tree.h"
#include "util/bench_json.h"
#include "util/table.h"
#include "util/units.h"

namespace {

using namespace ccube;

constexpr int kRanks = 8;
constexpr int kChunksPerTree = 4;
/// Minimum invocation size the double tree can chunk (2 * chunks).
constexpr std::size_t kMinInvocationElems = 16;
/// Total payload for the measured sweep: 64 Ki floats = 256 KiB.
constexpr std::size_t kTotalElems = 1u << 16;
constexpr int kRepetitions = 3;

/** Scales the ResNet-50 layer-size distribution to kTotalElems. */
std::vector<std::size_t>
layerwiseInvocations(const std::vector<double>& layer_bytes)
{
    double total_bytes = 0.0;
    for (double b : layer_bytes)
        total_bytes += b;
    std::vector<std::size_t> elems;
    for (double b : layer_bytes) {
        const auto scaled = static_cast<std::size_t>(
            b / total_bytes * static_cast<double>(kTotalElems));
        elems.push_back(std::max(scaled, kMinInvocationElems));
    }
    return elems;
}

std::vector<std::size_t>
slicingInvocations()
{
    constexpr std::size_t kSliceElems = 512;
    return std::vector<std::size_t>(kTotalElems / kSliceElems,
                                    kSliceElems);
}

/**
 * Times one full sweep (all invocations back to back), best of
 * kRepetitions, in seconds. Buffers are preallocated and zero-filled
 * so the timed region is purely the collective runtime.
 */
double
measureSweep(ccl::Communicator& comm,
             const topo::DoubleTreeEmbedding& embedding,
             const std::vector<std::size_t>& invocations)
{
    std::vector<ccl::RankBuffers> buffers;
    buffers.reserve(invocations.size());
    for (std::size_t elems : invocations)
        buffers.emplace_back(kRanks, std::vector<float>(elems, 0.0f));

    auto sweep = [&]() {
        for (ccl::RankBuffers& b : buffers)
            ccl::doubleTreeAllReduce(comm, b, embedding, kChunksPerTree,
                                     ccl::TreePhaseMode::kOverlapped);
    };
    sweep(); // warm up mailboxes, helper pool, forwarding-rule cache

    double best = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < kRepetitions; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        sweep();
        const std::chrono::duration<double> dt =
            std::chrono::steady_clock::now() - t0;
        best = std::min(best, dt.count());
    }
    return best;
}

} // namespace

int
main()
{
    using namespace ccube;
    using model::InvocationStrategy;

    std::cout << "=== Fig. 3: AllReduce bandwidth vs invocation "
                 "granularity (ResNet-50 parameters, 8 nodes) ===\n\n";

    const dnn::NetworkModel resnet = dnn::buildResnet50();
    std::vector<double> layer_bytes;
    for (double b : resnet.layerParamBytes())
        if (b > 0.0)
            layer_bytes.push_back(b);

    model::InvocationParams params;
    params.link = model::AlphaBeta::fromBandwidth(4.6e-6, 25e9);
    const model::InvocationModel inv(params);
    const double peak = 25e9;

    util::Table table({"strategy", "invocations", "bandwidth_GBps",
                       "normalized_to_peak", "slowdown_vs_oneshot"});
    const double one_shot = inv.effectiveBandwidth(
        8, layer_bytes, InvocationStrategy::kOneShot);
    const struct {
        const char* name;
        InvocationStrategy strategy;
    } rows[] = {
        {"one-shot", InvocationStrategy::kOneShot},
        {"layer-wise", InvocationStrategy::kLayerWise},
        {"slicing", InvocationStrategy::kSlicing},
    };
    for (const auto& row : rows) {
        const double bw =
            inv.effectiveBandwidth(8, layer_bytes, row.strategy);
        const std::size_t count =
            inv.invocationSizes(layer_bytes, row.strategy).size();
        table.addRow({row.name, std::to_string(count),
                      util::formatDouble(bw / 1e9, 2),
                      util::formatDouble(bw / peak, 3),
                      util::formatDouble(one_shot / bw, 2)});
    }
    table.print(std::cout);
    std::cout << "\nPaper reference: layer-wise ≈ 2x loss, slicing > 4x "
                 "loss vs one-shot — C-Cube therefore keeps the "
                 "one-shot collective and chains within it.\n";

    // ------------------------------------------------------------------
    // Measured section: the functional runtime on the same three
    // granularities, persistent executor vs spawn-per-collective.
    // ------------------------------------------------------------------
    std::cout << "\n=== Measured: functional double-tree AllReduce, "
              << kTotalElems * sizeof(float) / 1024
              << " KiB total payload, " << kRanks
              << " ranks (best of " << kRepetitions << ") ===\n\n";

    const topo::Graph dgx1 = topo::makeDgx1();
    const topo::DoubleTreeEmbedding dt = topo::makeDgx1DoubleTree(dgx1);

    const struct {
        const char* name;
        std::vector<std::size_t> invocations;
    } sweeps[] = {
        {"one-shot", {kTotalElems}},
        {"layer-wise", layerwiseInvocations(layer_bytes)},
        {"slicing", slicingInvocations()},
    };
    const struct {
        const char* name;
        ccl::RankExecutor::Mode mode;
    } modes[] = {
        {"persistent", ccl::RankExecutor::Mode::kPersistent},
        {"spawn", ccl::RankExecutor::Mode::kSpawnPerCall},
    };

    util::Table measured({"strategy", "invocations", "mode",
                          "sweep_ms", "slowdown_vs_oneshot"});
    std::vector<util::BenchRecord> records;
    for (const auto& mode : modes) {
        ccl::Communicator comm(kRanks, 4, mode.mode);
        double mode_one_shot = 0.0;
        for (const auto& sweep : sweeps) {
            const double secs =
                measureSweep(comm, dt, sweep.invocations);
            if (sweep.name == sweeps[0].name)
                mode_one_shot = secs;
            const double slowdown =
                mode_one_shot > 0.0 ? secs / mode_one_shot : 0.0;
            measured.addRow(
                {sweep.name, std::to_string(sweep.invocations.size()),
                 mode.name, util::formatDouble(secs * 1e3, 3),
                 util::formatDouble(slowdown, 2)});

            util::BenchRecord record;
            record.source = "fig03_invocation_granularity";
            record.kind = "invocation_sweep";
            record.name = sweep.name;
            record.mode = mode.name;
            record.bytes = static_cast<std::int64_t>(
                kTotalElems * sizeof(float));
            record.ns_per_op = secs * 1e9;
            record.extra["invocations"] =
                static_cast<double>(sweep.invocations.size());
            record.extra["slowdown_vs_oneshot"] = slowdown;
            records.push_back(std::move(record));
        }
    }
    measured.print(std::cout);
    std::cout << "\nThe persistent executor keeps rank and forwarder "
                 "threads parked between invocations — the host analog "
                 "of the paper's persistent kernels — so fine-grained "
                 "invocation approaches one-shot cost instead of paying "
                 "a full thread-spawn per collective.\n";

    const std::string path = util::benchOutputPath();
    util::writeBenchRecords(path, records, /*append=*/true);
    std::cout << "\nwrote " << records.size() << " records to " << path
              << "\n";
    return 0;
}
