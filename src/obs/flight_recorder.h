#ifndef CCUBE_OBS_FLIGHT_RECORDER_H_
#define CCUBE_OBS_FLIGHT_RECORDER_H_

/**
 * @file
 * Bounded trace-event ring buffer — always-on capture that cannot OOM.
 *
 * A FlightRecorder keeps the most recent `capacity` events and evicts
 * the oldest when full (aircraft flight-recorder semantics), so
 * tracing can stay enabled across arbitrarily long sweeps and the tail
 * of the run — usually the part that explains a hang or a regression —
 * is always available for post-hoc analysis. Contrast with the
 * TraceRecorder's default capped vector, which keeps the *head* of the
 * run and drops the tail (see TraceRecorder::setCapacity).
 *
 * The TraceRecorder can adopt a FlightRecorder as its storage backend
 * (`TraceRecorder::setFlightCapacity`); it is also usable standalone
 * as a sink for any TraceEvent stream.
 */

#include <cstdint>
#include <mutex>
#include <vector>

#include "obs/trace.h"

namespace ccube {
namespace obs {

/**
 * Fixed-capacity, thread-safe ring of TraceEvents with drop-oldest
 * eviction.
 */
class FlightRecorder
{
  public:
    /** Creates a ring holding at most @p capacity events (≥ 1). */
    explicit FlightRecorder(std::size_t capacity);

    FlightRecorder(const FlightRecorder&) = delete;
    FlightRecorder& operator=(const FlightRecorder&) = delete;

    /** Appends @p event, evicting the oldest event when full. */
    void record(TraceEvent event);

    /** Maximum number of retained events. */
    std::size_t capacity() const { return capacity_; }

    /** Events currently retained (≤ capacity). */
    std::size_t size() const;

    /** Total events ever recorded (retained + evicted). */
    std::uint64_t recorded() const;

    /** Events evicted to make room (recorded − size). */
    std::uint64_t dropped() const;

    /** Retained events, oldest first. */
    std::vector<TraceEvent> snapshot() const;

    /** Drops every retained event and resets the counters. */
    void clear();

  private:
    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::vector<TraceEvent> ring_; ///< grows to capacity_, then wraps
    std::size_t next_ = 0;         ///< write position once wrapped
    std::uint64_t recorded_ = 0;
};

} // namespace obs
} // namespace ccube

#endif // CCUBE_OBS_FLIGHT_RECORDER_H_
