#include "topo/switch_fabric.h"

#include <string>

#include "util/logging.h"

namespace ccube {
namespace topo {

Graph
makeSwitchFabric(const SwitchFabricParams& params)
{
    CCUBE_CHECK(params.num_nodes >= 2, "fabric needs at least two nodes");
    CCUBE_CHECK(params.leaf_radix >= 2, "leaf radix must be at least 2");

    Graph graph("switch_fabric");
    for (int n = 0; n < params.num_nodes; ++n)
        graph.addNode("N" + std::to_string(n));

    const int num_leaves =
        (params.num_nodes + params.leaf_radix - 1) / params.leaf_radix;

    std::vector<NodeId> leaves;
    for (int l = 0; l < num_leaves; ++l) {
        const NodeId leaf = graph.addNode("Leaf" + std::to_string(l));
        graph.markSwitch(leaf);
        leaves.push_back(leaf);
    }

    CCUBE_CHECK(params.links_per_node >= 1,
                "need at least one endpoint link");
    for (int n = 0; n < params.num_nodes; ++n) {
        const NodeId leaf =
            leaves[static_cast<std::size_t>(n / params.leaf_radix)];
        for (int l = 0; l < params.links_per_node; ++l) {
            graph.addLink(n, leaf, params.link_bandwidth,
                          params.link_latency + params.switch_latency,
                          LinkKind::kNvlink);
        }
    }

    if (num_leaves > 1) {
        const NodeId spine = graph.addNode("Spine");
        graph.markSwitch(spine);
        for (NodeId leaf : leaves) {
            // Widened uplinks: the spine is non-blocking; one uplink
            // per lane so per-lane flows stay independent.
            for (int l = 0; l < params.links_per_node; ++l) {
                graph.addLink(leaf, spine,
                              params.link_bandwidth * params.leaf_radix,
                              params.link_latency +
                                  params.switch_latency,
                              LinkKind::kNvlink);
            }
        }
    }
    return graph;
}

int
fabricHopCount(const SwitchFabricParams& params, NodeId a, NodeId b)
{
    CCUBE_CHECK(a >= 0 && a < params.num_nodes, "bad endpoint " << a);
    CCUBE_CHECK(b >= 0 && b < params.num_nodes, "bad endpoint " << b);
    if (a == b)
        return 0;
    const int leaf_a = a / params.leaf_radix;
    const int leaf_b = b / params.leaf_radix;
    return leaf_a == leaf_b ? 2 : 4;
}

} // namespace topo
} // namespace ccube
