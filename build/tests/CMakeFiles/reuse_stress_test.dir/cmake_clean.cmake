file(REMOVE_RECURSE
  "CMakeFiles/reuse_stress_test.dir/reuse_stress_test.cpp.o"
  "CMakeFiles/reuse_stress_test.dir/reuse_stress_test.cpp.o.d"
  "reuse_stress_test"
  "reuse_stress_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reuse_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
