#ifndef CCUBE_MODEL_TREE_MODEL_H_
#define CCUBE_MODEL_TREE_MODEL_H_

/**
 * @file
 * Analytical cost of the (non-overlapped) tree AllReduce
 * (paper Eqs. (3)–(6)).
 */

#include "model/alpha_beta.h"

namespace ccube {
namespace model {

/**
 * Pipelined tree AllReduce: reduction up the tree, then broadcast
 * down, message split into K chunks; log(P)+K steps per phase.
 */
class TreeModel
{
  public:
    explicit TreeModel(AlphaBeta link) : link_(link) {}

    /** One pipeline step: α + βN/K. */
    double stepTime(double bytes, int chunks) const;

    /** Eq. (3): (log(P)+K)(α + βN/K) — one phase. */
    double phaseTime(int p, double bytes, int chunks) const;

    /** Eq. (4): K_opt = √(log(P)·βN/α), continuous. */
    double optimalChunks(int p, double bytes) const;

    /** Rounded K_opt, clamped to ≥ 1. */
    int optimalChunksInt(int p, double bytes) const;

    /**
     * Eq. (6) closed form at K_opt:
     * 2log(P)α + 2βN + 4√(αβN·log(P)).
     */
    double allReduceTime(int p, double bytes) const;

    /** Chunked form: 2(log(P)+K)(α + βN/K) for a given K. */
    double allReduceTimeChunked(int p, double bytes, int chunks) const;

    /**
     * Gradient turnaround: time until the *first* chunk completes
     * AllReduce. The baseline broadcasts only after the full
     * reduction: (log(P)+K)·s + log(P)·s = (2log(P)+K)·s.
     */
    double turnaroundTime(int p, double bytes, int chunks) const;

    /** Algorithm bandwidth at K_opt: bytes / allReduceTime. */
    double effectiveBandwidth(int p, double bytes) const;

    /** Link parameters used by this model. */
    const AlphaBeta& link() const { return link_; }

  private:
    AlphaBeta link_;
};

} // namespace model
} // namespace ccube

#endif // CCUBE_MODEL_TREE_MODEL_H_
