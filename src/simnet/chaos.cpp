#include "simnet/chaos.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "util/logging.h"
#include "util/rng.h"

namespace ccube {
namespace simnet {

namespace {

/**
 * The reverse channel paired with @p channel_id: the channel at the
 * same position in the dst→src list as @p channel_id holds in the
 * src→dst list. On multi-link pairs this pairs each directed channel
 * with one fixed twin, so killing "a link" kills exactly one lane in
 * each direction.
 */
int
pairedReverse(const topo::Graph& graph, int channel_id)
{
    const topo::ChannelDesc& desc = graph.channel(channel_id);
    const std::vector<int> forward =
        graph.channelIds(desc.src, desc.dst);
    const std::vector<int> reverse =
        graph.channelIds(desc.dst, desc.src);
    if (reverse.empty())
        return -1; // one-way channel; nothing to pair
    std::size_t index = 0;
    for (std::size_t i = 0; i < forward.size(); ++i) {
        if (forward[i] == channel_id) {
            index = i;
            break;
        }
    }
    return reverse[std::min(index, reverse.size() - 1)];
}

} // namespace

ChaosPlan::ChaosPlan(const topo::Graph& graph, std::uint64_t seed,
                     ChaosOptions options)
    : seed_(seed)
{
    CCUBE_CHECK(graph.channelCount() > 0,
                "chaos plan needs a topology with channels");
    CCUBE_CHECK(options.horizon_s > 0.0, "chaos horizon must be > 0");
    CCUBE_CHECK(options.min_faults >= 0 &&
                    options.max_faults >= options.min_faults,
                "bad chaos fault-count range");

    util::Rng rng(seed);
    const int draws = static_cast<int>(rng.uniformInt(
        options.min_faults, options.max_faults));
    const double total_weight = options.link_fail_weight +
                                options.degrade_weight +
                                options.slow_node_weight;
    CCUBE_CHECK(total_weight > 0.0, "all chaos weights are zero");

    // Live failed-state per channel id, replayed as events are drawn,
    // so deadAtHorizon() reflects the net effect of flap cycles.
    std::set<int> down;

    auto fail_link = [&](double at, int channel) {
        plan_.failChannel(at, channel);
        down.insert(channel);
        ++fails_;
        const int twin = pairedReverse(graph, channel);
        if (twin >= 0 && twin != channel) {
            plan_.failChannel(at, twin);
            down.insert(twin);
        }
    };
    auto restore_link = [&](double at, int channel) {
        plan_.restoreChannel(at, channel);
        down.erase(channel);
        ++restores_;
        const int twin = pairedReverse(graph, channel);
        if (twin >= 0 && twin != channel) {
            plan_.restoreChannel(at, twin);
            down.erase(twin);
        }
    };

    for (int d = 0; d < draws; ++d) {
        const double pick = rng.uniform(0.0, total_weight);
        const int channel = static_cast<int>(
            rng.uniformInt(0, graph.channelCount() - 1));
        double at = rng.uniform(0.0, options.horizon_s);

        if (pick < options.link_fail_weight) {
            // Link kill, with optional restore and flap cycles. Each
            // follow-up lands strictly later within the horizon.
            fail_link(at, channel);
            while (rng.uniform() < options.restore_probability &&
                   at < options.horizon_s) {
                at = rng.uniform(at, options.horizon_s);
                restore_link(at, channel);
                if (rng.uniform() >= options.flap_probability ||
                    at >= options.horizon_s)
                    break;
                at = rng.uniform(at, options.horizon_s);
                fail_link(at, channel);
            }
        } else if (pick <
                   options.link_fail_weight + options.degrade_weight) {
            const double factor =
                rng.uniform(options.min_factor, options.max_factor);
            plan_.degradeChannel(at, channel, factor);
            const int twin = pairedReverse(graph, channel);
            if (twin >= 0 && twin != channel)
                plan_.degradeChannel(at, twin, factor);
            ++degrades_;
        } else {
            const topo::NodeId node = static_cast<topo::NodeId>(
                rng.uniformInt(0, graph.nodeCount() - 1));
            plan_.slowNode(at, node,
                           rng.uniform(options.min_factor,
                                       options.max_factor));
            ++slowdowns_;
        }
    }

    dead_.assign(down.begin(), down.end());
}

std::string
ChaosPlan::summary() const
{
    std::ostringstream out;
    out << "seed=" << seed_ << " events=" << eventCount()
        << " fail=" << fails_ << " restore=" << restores_
        << " degrade=" << degrades_ << " slow=" << slowdowns_
        << " dead=" << dead_.size();
    return out.str();
}

} // namespace simnet
} // namespace ccube
