#ifndef CCUBE_OBS_SESSION_H_
#define CCUBE_OBS_SESSION_H_

/**
 * @file
 * Command-line wiring for the observability layer.
 *
 * Any bench or example constructs an ObsSession from its parsed flags;
 * `--trace-out=FILE` enables the global TraceRecorder and writes a
 * Chrome/Perfetto trace at the end of the run, `--metrics-out=FILE`
 * enables the global MetricRegistry and writes CSV (or JSON when the
 * path ends in `.json`). With neither flag present the session is
 * inert and the instrumented code paths stay on their disabled
 * fast path.
 */

#include <string>

#include "util/flags.h"

namespace ccube {
namespace obs {

/**
 * RAII capture session: enables the global recorder/registry on
 * construction, flushes them to the requested files on finish() or
 * destruction.
 */
class ObsSession
{
  public:
    /** Reads `--trace-out` / `--metrics-out` from @p flags. */
    explicit ObsSession(const util::Flags& flags);

    /** Direct construction (empty path = facility off). */
    ObsSession(std::string trace_path, std::string metrics_path);

    /** Flushes on scope exit when finish() was not called. */
    ~ObsSession();

    ObsSession(const ObsSession&) = delete;
    ObsSession& operator=(const ObsSession&) = delete;

    /** True when a trace file was requested. */
    bool tracing() const { return !trace_path_.empty(); }

    /** True when a metrics file was requested. */
    bool metrics() const { return !metrics_path_.empty(); }

    /**
     * Writes the trace JSON and metrics files, folding the per-rank
     * RankCounters into the registry first. Idempotent.
     */
    void finish();

  private:
    void start();

    std::string trace_path_;
    std::string metrics_path_;
    bool finished_ = false;
};

} // namespace obs
} // namespace ccube

#endif // CCUBE_OBS_SESSION_H_
