/**
 * @file
 * Tests for the CLI flag parser and the new catalog models.
 */

#include <gtest/gtest.h>

#include "dnn/catalog.h"
#include "util/flags.h"

namespace ccube {
namespace {

util::Flags
parse(std::initializer_list<const char*> args)
{
    std::vector<const char*> argv{"prog"};
    argv.insert(argv.end(), args.begin(), args.end());
    return util::Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, EqualsForm)
{
    const auto flags = parse({"--batch=64", "--workload=vgg16"});
    EXPECT_EQ(flags.getInt("batch", 0), 64);
    EXPECT_EQ(flags.get("workload"), "vgg16");
    EXPECT_FALSE(flags.has("missing"));
    EXPECT_EQ(flags.getInt("missing", 7), 7);
}

TEST(Flags, SpaceForm)
{
    const auto flags = parse({"--batch", "32", "--bw", "0.25"});
    EXPECT_EQ(flags.getInt("batch", 0), 32);
    EXPECT_DOUBLE_EQ(flags.getDouble("bw", 1.0), 0.25);
}

TEST(Flags, BareBooleanDoesNotEatNextFlag)
{
    const auto flags = parse({"--verbose", "--batch=8"});
    EXPECT_TRUE(flags.has("verbose"));
    EXPECT_EQ(flags.get("verbose", "unset"), "unset");
    EXPECT_EQ(flags.getInt("batch", 0), 8);
}

TEST(Flags, PositionalArguments)
{
    const auto flags = parse({"resnet50", "--batch=8", "extra"});
    ASSERT_EQ(flags.positional().size(), 2u);
    EXPECT_EQ(flags.positional()[0], "resnet50");
    EXPECT_EQ(flags.positional()[1], "extra");
}

TEST(Flags, NamesListsAllFlags)
{
    const auto flags = parse({"--a=1", "--b", "2", "--c"});
    const auto names = flags.names();
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "a");
    EXPECT_EQ(names[1], "b");
    EXPECT_EQ(names[2], "c");
}

TEST(Flags, DiesOnGarbageNumbers)
{
    const auto flags = parse({"--batch=abc"});
    EXPECT_DEATH(flags.getInt("batch", 0), "integer");
}

TEST(CatalogExtra, AlexNetParameterCount)
{
    // Published AlexNet: ~61 M parameters, FC-dominated.
    const auto net = dnn::buildAlexNet();
    EXPECT_GT(net.totalParams(), 55000000);
    EXPECT_LT(net.totalParams(), 70000000);
}

TEST(CatalogExtra, Resnet101ParameterCount)
{
    // Published ResNet-101: ~44.5 M parameters.
    const auto net = dnn::buildResnet101();
    EXPECT_GT(net.totalParams(), 42000000);
    EXPECT_LT(net.totalParams(), 47000000);
    // Deeper than ResNet-50 but same stage pattern.
    EXPECT_GT(net.numLayers(), dnn::buildResnet50().numLayers());
}

} // namespace
} // namespace ccube
