/**
 * @file
 * Reproduces Fig. 12: (a) communication performance of the baseline
 * two-tree (B) vs overlapped two-tree (C1) on the DGX-1 as data size
 * grows; (b) the measured C1-over-B benefit against the α-β model
 * prediction (Eq. (6) / Eq. (7)).
 *
 * Paper shape: C1 exceeds B by ~75% at 64 MB rising to ~80% for
 * larger sizes; measurement tracks the model closely.
 */

#include <iostream>

#include "core/ccube_engine.h"
#include "model/overlapped_tree_model.h"
#include "model/tree_model.h"
#include "obs/session.h"
#include "util/flags.h"
#include "util/table.h"
#include "util/units.h"

int
main(int argc, char** argv)
{
    using namespace ccube;

    const util::Flags flags(argc, argv);
    obs::ObsSession obs_session(flags);

    std::cout << "=== Fig. 12: DGX-1 communication performance, "
                 "B vs C1 ===\n\n";

    core::CCubeEngine engine(dnn::buildResnet50());
    const model::AlphaBeta link = engine.scheduler().linkModel();
    const model::TreeModel tree_model(link);
    const model::OverlappedTreeModel over_model(link);

    util::Table table({"size", "B_ms", "C1_ms", "B_GBps", "C1_GBps",
                       "measured_gain_%", "model_gain_%"});

    for (double mb : {16.0, 32.0, 64.0, 128.0, 256.0}) {
        const double bytes = util::mib(mb);
        const auto base =
            engine.commOnly(core::Mode::kBaseline, bytes);
        const auto over =
            engine.commOnly(core::Mode::kOverlappedTree, bytes);
        const double measured =
            base.completion_time / over.completion_time - 1.0;
        // Each tree of the double tree carries half the payload.
        const double model = tree_model.allReduceTime(8, bytes / 2) /
                                 over_model.allReduceTime(8, bytes / 2) -
                             1.0;
        table.addRow(
            {util::formatBytes(bytes),
             util::formatDouble(base.completion_time * 1e3, 3),
             util::formatDouble(over.completion_time * 1e3, 3),
             util::formatDouble(
                 base.effectiveBandwidth(bytes) / 1e9, 2),
             util::formatDouble(
                 over.effectiveBandwidth(bytes) / 1e9, 2),
             util::formatDouble(measured * 100, 1),
             util::formatDouble(model * 100, 1)});
    }
    table.print(std::cout);
    std::cout << "\nPaper reference: +75% at 64MB rising to ~80%; "
                 "Fig. 12(b) shows measurement tracking the Eq.(6)/"
                 "Eq.(7) model. Residual gap vs the model comes from "
                 "the detour hop the physical embedding needs.\n";
    obs_session.finish();
    return 0;
}
