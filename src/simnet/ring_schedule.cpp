#include "simnet/ring_schedule.h"

#include <algorithm>

#include "obs/monitor.h"
#include "util/logging.h"

namespace ccube {
namespace simnet {

RingSchedule::RingSchedule(Network& network,
                           const topo::RingEmbedding& ring,
                           double total_bytes, LaneFn lane_fn)
    : net_(network),
      engine_(network),
      ring_(ring),
      lane_fn_(std::move(lane_fn)),
      chunk_bytes_(total_bytes / ring.size()),
      total_steps_(2 * (ring.size() - 1)),
      send_done_(static_cast<std::size_t>(ring.size()), -1),
      recv_done_(static_cast<std::size_t>(ring.size()), -1),
      current_(static_cast<std::size_t>(ring.size()), 0),
      available_at_(static_cast<std::size_t>(ring.size()),
                    std::vector<double>(
                        static_cast<std::size_t>(ring.size()), -1.0))
{
    CCUBE_CHECK(ring.size() >= 2, "ring needs at least two ranks");
    CCUBE_CHECK(total_bytes > 0.0, "non-positive payload");
}

void
RingSchedule::start(double at)
{
    net_.simulation().at(at, [this]() {
        for (int pos = 0; pos < ring_.size(); ++pos)
            startStep(pos, 0);
    });
}

void
RingSchedule::startStep(int pos, int step)
{
    const int p = ring_.size();
    const topo::NodeId src =
        ring_.order[static_cast<std::size_t>(pos)];
    const topo::NodeId dst = ring_.next(pos);
    const int next_pos = (pos + 1) % p;
    const int lane = lane_fn_ ? lane_fn_(src, dst) : 0;
    engine_.send(src, dst, chunk_bytes_,
                 [this, pos, next_pos, step]() {
                     // One completion serves both endpoints: the
                     // sender's channel drained and the receiver's
                     // chunk landed.
                     onSendDrained(pos, step);
                     onChunkArrived(next_pos, step);
                 },
                 lane);
}

void
RingSchedule::onSendDrained(int pos, int step)
{
    send_done_[static_cast<std::size_t>(pos)] = step;
    maybeAdvance(pos);
}

void
RingSchedule::onChunkArrived(int pos, int step)
{
    const int p = ring_.size();
    recv_done_[static_cast<std::size_t>(pos)] = step;
    if (step == p - 2) {
        // Last Reduce-Scatter arrival: this position now owns the
        // fully reduced chunk at ring position (pos+1) mod P.
        recordAvailable(pos, (pos + 1) % p);
    } else if (step >= p - 1) {
        // AllGather arrival of the fully reduced chunk
        // (pos − (step − (P−1))) mod P.
        const int s = step - (p - 1);
        recordAvailable(pos, ((pos - s) % p + p) % p);
    }
    maybeAdvance(pos);
}

void
RingSchedule::maybeAdvance(int pos)
{
    const int step = current_[static_cast<std::size_t>(pos)];
    if (send_done_[static_cast<std::size_t>(pos)] < step ||
        recv_done_[static_cast<std::size_t>(pos)] < step) {
        return;
    }
    const int next = step + 1;
    current_[static_cast<std::size_t>(pos)] = next;
    if (next < total_steps_) {
        startStep(pos, next);
    } else {
        ++ranks_done_;
        if (ranks_done_ == ring_.size())
            completion_time_ = net_.simulation().now();
    }
}

void
RingSchedule::recordAvailable(int pos, int chunk)
{
    const topo::NodeId rank =
        ring_.order[static_cast<std::size_t>(pos)];
    double& slot = available_at_[static_cast<std::size_t>(rank)]
                                [static_cast<std::size_t>(chunk)];
    CCUBE_CHECK(slot < 0.0, "ring chunk delivered twice");
    slot = net_.simulation().now();
}

ScheduleResult
RingSchedule::result() const
{
    CCUBE_CHECK(finished(), "schedule has not completed");
    ScheduleResult out;
    out.num_chunks = ring_.size();
    out.completion_time = completion_time_;
    out.chunk_at_rank = available_at_;
    out.chunk_ready.assign(static_cast<std::size_t>(ring_.size()), 0.0);
    for (int c = 0; c < ring_.size(); ++c) {
        double latest = 0.0;
        for (const auto& per_rank : available_at_)
            latest = std::max(latest,
                              per_rank[static_cast<std::size_t>(c)]);
        out.chunk_ready[static_cast<std::size_t>(c)] = latest;
    }
    return out;
}

ScheduleResult
runRingSchedule(sim::Simulation& simulation, Network& network,
                const topo::RingEmbedding& ring, double total_bytes,
                ccl::Protocol proto)
{
    RingSchedule schedule(network, ring, total_bytes);
    schedule.setProtocol(proto);
    const double at = simulation.now();
    schedule.start(at);
    simulation.run();
    ScheduleResult result = schedule.result();
    obs::Monitor& monitor = obs::Monitor::global();
    if (monitor.enabled())
        monitor.collectiveComplete("allreduce.ring", at,
                                   result.completion_time,
                                   total_bytes);
    return result;
}

} // namespace simnet
} // namespace ccube
