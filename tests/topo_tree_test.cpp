/**
 * @file
 * Unit tests for logical trees, embeddings, double trees, and detour
 * routing — including DESIGN.md invariants #7 (detours never touch
 * the host) and #8 (naive double tree conflicts, C-Cube embedding is
 * conflict-free).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "topo/detour_router.h"
#include "topo/dgx1.h"
#include "topo/double_tree.h"
#include "topo/switch_fabric.h"
#include "topo/tree_embedding.h"

namespace ccube {
namespace topo {
namespace {

TEST(BinaryTree, InorderIsValidAndBalanced)
{
    for (int p = 2; p <= 64; ++p) {
        const BinaryTree tree = BinaryTree::inorder(p);
        ASSERT_TRUE(tree.valid()) << "p=" << p;
        // Height of the midpoint tree is ⌈log2(p+1)⌉.
        int expect = 0;
        while ((1 << expect) < p + 1)
            ++expect;
        EXPECT_EQ(tree.height(), expect) << "p=" << p;
    }
}

TEST(BinaryTree, EdgesSpanAllNodes)
{
    const BinaryTree tree = BinaryTree::inorder(8);
    EXPECT_EQ(tree.edges().size(), 7u);
    EXPECT_EQ(tree.bfsOrder().size(), 8u);
    EXPECT_EQ(tree.leaves().size() + tree.interior().size(), 8u);
}

TEST(BinaryTree, MirrorIsValidAndMapsRoot)
{
    const BinaryTree tree = BinaryTree::inorder(8);
    const BinaryTree mirror = tree.mirrored();
    ASSERT_TRUE(mirror.valid());
    EXPECT_EQ(mirror.root(), 7 - tree.root());
    EXPECT_EQ(mirror.height(), tree.height());
}

TEST(BinaryTree, ShiftIsValidRelabeling)
{
    const BinaryTree tree = BinaryTree::inorder(8);
    const BinaryTree shifted = tree.shifted(3);
    ASSERT_TRUE(shifted.valid());
    EXPECT_EQ(shifted.root(), (tree.root() + 3) % 8);
}

TEST(BinaryTree, MirrorSwapsMostRoles)
{
    // Sanders-style load balancing: interior nodes of one tree tend to
    // be leaves of the other. For the inorder tree on 8 nodes at most
    // half the interior nodes may coincide.
    const BinaryTree t0 = BinaryTree::inorder(8);
    const BinaryTree t1 = t0.mirrored();
    const auto i0 = t0.interior();
    const auto i1 = t1.interior();
    int shared = 0;
    for (NodeId n : i0)
        if (std::find(i1.begin(), i1.end(), n) != i1.end())
            ++shared;
    EXPECT_LE(shared, static_cast<int>(i0.size()) / 2 + 1);
}

TEST(BinaryTree, DepthOfRootIsZero)
{
    const BinaryTree tree = BinaryTree::inorder(8);
    EXPECT_EQ(tree.depthOf(tree.root()), 0);
    for (NodeId leaf : tree.leaves())
        EXPECT_GE(tree.depthOf(leaf), 1);
}

TEST(Route, ReverseAndTransits)
{
    Route route{{2, 0, 4}};
    EXPECT_TRUE(route.isDetour());
    EXPECT_EQ(route.hopCount(), 2);
    EXPECT_EQ(route.transits(), std::vector<NodeId>{0});
    EXPECT_EQ(route.reversed().hops, (std::vector<NodeId>{4, 0, 2}));
    Route direct{{1, 3}};
    EXPECT_FALSE(direct.isDetour());
    EXPECT_TRUE(direct.transits().empty());
}

TEST(EmbedTree, UsesDirectChannelsWhenAvailable)
{
    const Graph g = makeDgx1();
    BinaryTree tree(8);
    tree.setRoot(0);
    tree.addEdge(0, 1);
    tree.addEdge(0, 2);
    tree.addEdge(1, 3);
    tree.addEdge(2, 6);
    tree.addEdge(3, 7);
    tree.addEdge(6, 4);
    tree.addEdge(4, 5);
    const TreeEmbedding emb = embedTree(g, std::move(tree));
    for (const Route& route : emb.routes)
        EXPECT_FALSE(route.isDetour());
}

TEST(EmbedTree, DetoursWhenNotAdjacent)
{
    const Graph g = makeDgx1();
    BinaryTree tree(8);
    tree.setRoot(2);
    tree.addEdge(2, 4); // not adjacent — needs a detour
    tree.addEdge(2, 3);
    tree.addEdge(4, 6);
    tree.addEdge(4, 5);
    tree.addEdge(3, 0);
    tree.addEdge(3, 1);
    tree.addEdge(6, 7);
    const TreeEmbedding emb = embedTree(g, std::move(tree));
    const Route& route = emb.routeToChild(4);
    EXPECT_TRUE(route.isDetour());
    EXPECT_EQ(route.hops.size(), 3u);
}

TEST(DirectEmbedding, AllRoutesDirect)
{
    const TreeEmbedding emb = directEmbedding(BinaryTree::inorder(16));
    EXPECT_EQ(emb.routes.size(), 15u);
    for (const Route& route : emb.routes)
        EXPECT_EQ(route.hops.size(), 2u);
}

class Dgx1DoubleTreeTest : public ::testing::Test
{
  protected:
    Dgx1DoubleTreeTest() : graph_(makeDgx1()) {}
    Graph graph_;
};

TEST_F(Dgx1DoubleTreeTest, CCubeEmbeddingIsConflictFree)
{
    const DoubleTreeEmbedding emb = makeDgx1DoubleTree(graph_);
    EXPECT_TRUE(emb.tree0.tree.valid());
    EXPECT_TRUE(emb.tree1.tree.valid());
    EXPECT_TRUE(isConflictFree(graph_, emb))
        << "conflicts: " << conflictingPairs(graph_, emb).size();
}

TEST_F(Dgx1DoubleTreeTest, SharedPairsSitOnDoubleLinks)
{
    const DoubleTreeEmbedding emb = makeDgx1DoubleTree(graph_);
    for (const auto& [pair, usage] : analyzeChannelUsage(emb)) {
        if (usage.forward > 1 || usage.backward > 1) {
            EXPECT_EQ(graph_.linkCount(pair.first, pair.second), 2)
                << pair.first << "-" << pair.second;
        }
    }
}

TEST_F(Dgx1DoubleTreeTest, DetourTransitsAreGpu0And1)
{
    const DoubleTreeEmbedding emb = makeDgx1DoubleTree(graph_);
    const auto rules = extractForwardingRules(emb);
    EXPECT_EQ(transitNodes(rules), (std::vector<NodeId>{0, 1}));
    // One forwarding kernel per direction per detour edge.
    EXPECT_EQ(rules.size(), 4u);
}

TEST_F(Dgx1DoubleTreeTest, DetoursAvoidHost)
{
    Dgx1Params params;
    params.with_host = true;
    const Graph with_host = makeDgx1(params);
    const DoubleTreeEmbedding emb = makeDgx1DoubleTree(with_host);
    EXPECT_TRUE(routesAvoidHost(with_host, emb.tree0));
    EXPECT_TRUE(routesAvoidHost(with_host, emb.tree1));
}

TEST_F(Dgx1DoubleTreeTest, NaiveDoubleTreeHasConflicts)
{
    // Paper Fig. 10(a): without conflict-aware placement, channels are
    // shared between the two trees in opposite roles, making the
    // overlapped algorithm impossible.
    const DoubleTreeEmbedding naive = makeNaiveDgx1DoubleTree(graph_);
    EXPECT_FALSE(isConflictFree(graph_, naive));
}

TEST(MirroredDoubleTree, ConflictFreeOnFabric)
{
    SwitchFabricParams params;
    params.num_nodes = 16;
    const Graph fabric = makeSwitchFabric(params);
    const DoubleTreeEmbedding emb = makeMirroredDoubleTree(fabric, 16);
    EXPECT_TRUE(emb.tree0.tree.valid());
    EXPECT_TRUE(emb.tree1.tree.valid());
}

TEST(ForwardingRules, DirectionsComeInPairs)
{
    const Graph g = makeDgx1();
    const DoubleTreeEmbedding emb = makeDgx1DoubleTree(g);
    int reduce = 0;
    int broadcast = 0;
    for (const ForwardingRule& rule : extractForwardingRules(emb)) {
        if (rule.phase == PhaseDirection::kReduction)
            ++reduce;
        else
            ++broadcast;
    }
    EXPECT_EQ(reduce, broadcast);
}

} // namespace
} // namespace topo
} // namespace ccube
