#ifndef CCUBE_MODEL_INVOCATION_MODEL_H_
#define CCUBE_MODEL_INVOCATION_MODEL_H_

/**
 * @file
 * Cost of splitting AllReduce into multiple invocations (paper Fig. 3).
 *
 * "One-shot" calls AllReduce once for the whole gradient buffer;
 * "layer-wise" calls once per layer; "slicing" divides further. Every
 * invocation pays a fixed setup overhead (kernel launches, protocol
 * setup) in addition to the α-β transfer cost, which is why finer
 * granularity loses ~2× (layer-wise) to >4× (slicing) in bandwidth.
 */

#include <vector>

#include "model/alpha_beta.h"

namespace ccube {
namespace model {

/** Granularity strategies compared in Fig. 3. */
enum class InvocationStrategy {
    kOneShot,   ///< single AllReduce over the full buffer
    kLayerWise, ///< one AllReduce per layer
    kSlicing,   ///< several slices per layer
};

/** Parameters of the invocation-overhead model. */
struct InvocationParams {
    AlphaBeta link;               ///< per-step transfer cost
    double setup_overhead = 2e-5; ///< per-invocation fixed cost, seconds
    int slices_per_layer = 4;     ///< slicing granularity
};

/**
 * Models AllReduce bandwidth as a function of invocation granularity.
 */
class InvocationModel
{
  public:
    explicit InvocationModel(InvocationParams params) : params_(params) {}

    /**
     * Total time to all-reduce buffers of the given sizes, one
     * invocation per buffer, on @p p nodes using the tree algorithm
     * at its per-invocation K_opt.
     */
    double totalTime(int p, const std::vector<double>& buffer_bytes) const;

    /**
     * Splits @p layer_bytes according to @p strategy and returns the
     * per-invocation buffer sizes.
     */
    std::vector<double>
    invocationSizes(const std::vector<double>& layer_bytes,
                    InvocationStrategy strategy) const;

    /**
     * Effective AllReduce bandwidth (total bytes / total time) for the
     * given strategy over a network with per-layer gradient sizes
     * @p layer_bytes.
     */
    double effectiveBandwidth(int p, const std::vector<double>& layer_bytes,
                              InvocationStrategy strategy) const;

  private:
    InvocationParams params_;
};

} // namespace model
} // namespace ccube

#endif // CCUBE_MODEL_INVOCATION_MODEL_H_
