/**
 * @file
 * Reproduces Fig. 13: end-to-end normalized training performance
 * (ideal communication-free = 1.0) for B / C1 / C2 / R / CC across
 * ZFNet, VGG-16, ResNet-50; batch sizes 16–128; low and high
 * interconnect bandwidth. Also prints the §V-B2 aggregate claims.
 *
 * Paper shape: C1 ≈ +10% avg (≤20%) over B; C2 slightly above C1;
 * CC ≈ +32% avg (≤61%) over B; R beats C1 but CC beats R (≤31%)
 * except ZFNet at small batch; efficiency rises with batch size and
 * bandwidth.
 */

#include <iostream>
#include <memory>
#include <vector>

#include "core/ccube_engine.h"
#include "core/report.h"
#include "obs/session.h"
#include "sweep/sweep.h"
#include "util/flags.h"
#include "util/stats.h"

int
main(int argc, char** argv)
{
    const ccube::util::Flags flags(argc, argv);
    ccube::obs::ObsSession obs_session(flags);
    using namespace ccube;
    using core::Mode;

    std::cout << "=== Fig. 13: normalized end-to-end performance "
                 "(1.0 = communication-free ideal) ===\n\n";

    struct Entry {
        std::string workload;
        std::string bw;
        int batch;
        double perf[5];
    };
    std::vector<Entry> entries;

    const std::vector<
        std::pair<const char*, dnn::NetworkModel (*)()>>
        workloads{{"zfnet", dnn::buildZfNet},
                  {"vgg16", dnn::buildVgg16},
                  {"resnet50", dnn::buildResnet50}};
    const std::vector<std::pair<const char*, double>> bandwidths{
        {"low", 0.25}, {"high", 1.0}};
    const std::vector<int> batches{16, 32, 64, 128};
    const std::vector<Mode> modes = core::allModes();

    util::Table table({"workload", "bw", "batch", "B", "C1", "C2", "R",
                       "CC"});
    // The engines are shared read-only across tasks; one task per
    // (workload, bandwidth, batch) cell writes its pre-assigned
    // entry, so the table is identical for every --jobs value.
    std::vector<std::unique_ptr<core::CCubeEngine>> engines;
    for (const auto& [name, build] : workloads)
        engines.push_back(
            std::make_unique<core::CCubeEngine>(build()));

    const std::size_t cells =
        workloads.size() * bandwidths.size() * batches.size();
    entries.resize(cells);
    sweep::runIndexed(
        sweep::Options::fromFlags(flags), cells, [&](std::size_t i) {
            const std::size_t w =
                i / (bandwidths.size() * batches.size());
            const std::size_t b =
                (i / batches.size()) % bandwidths.size();
            const int batch = batches[i % batches.size()];
            core::IterationConfig config;
            config.batch = batch;
            config.bandwidth_scale = bandwidths[b].second;
            Entry entry{workloads[w].first, bandwidths[b].first, batch,
                        {}};
            for (std::size_t m = 0; m < modes.size(); ++m) {
                entry.perf[m] =
                    engines[w]->evaluate(modes[m], config)
                        .normalized_perf;
            }
            entries[i] = std::move(entry);
        });
    for (const Entry& entry : entries) {
        std::vector<std::string> row{entry.workload, entry.bw,
                                     std::to_string(entry.batch)};
        for (double perf : entry.perf)
            row.push_back(util::formatDouble(perf, 3));
        table.addRow(std::move(row));
    }
    table.print(std::cout);

    // §V-B2 aggregates. Mode indices: 0=B 1=C1 2=C2 3=R 4=CC.
    util::RunningStats c1_over_b, cc_over_b, cc_over_r, c2_over_c1;
    for (const Entry& e : entries) {
        c1_over_b.add(e.perf[1] / e.perf[0] - 1.0);
        cc_over_b.add(e.perf[4] / e.perf[0] - 1.0);
        cc_over_r.add(e.perf[4] / e.perf[3] - 1.0);
        c2_over_c1.add(e.perf[2] / e.perf[1] - 1.0);
    }
    auto pct = [](double v) { return util::formatDouble(v * 100, 1); };
    std::cout << "\n--- Aggregates across the sweep (paper §V-B2) ---\n";
    std::cout << "C1 over B : avg " << pct(c1_over_b.mean()) << "%  max "
              << pct(c1_over_b.max())
              << "%   (paper: avg ~10%, max ~20%)\n";
    std::cout << "C2 over C1: avg " << pct(c2_over_c1.mean())
              << "%  (paper: slightly higher than C1)\n";
    std::cout << "CC over B : avg " << pct(cc_over_b.mean()) << "%  max "
              << pct(cc_over_b.max())
              << "%   (paper: avg ~32%, max ~61%)\n";
    std::cout << "CC over R : avg " << pct(cc_over_r.mean()) << "%  max "
              << pct(cc_over_r.max())
              << "%  min " << pct(cc_over_r.min())
              << "%  (paper: up to 31%; R wins only for "
                 "small-batch ZFNet)\n";
    return 0;
}
