#include "topo/detour_router.h"

#include <algorithm>

#include "util/logging.h"

namespace ccube {
namespace topo {

std::vector<ForwardingRule>
extractForwardingRules(const TreeEmbedding& embedding, int tree_index)
{
    std::vector<ForwardingRule> rules;
    for (const Route& route : embedding.routes) {
        if (!route.isDetour())
            continue;
        // route.hops runs parent → child. Broadcast follows it
        // forward; reduction runs the reversed route.
        for (std::size_t i = 1; i + 1 < route.hops.size(); ++i) {
            rules.push_back(ForwardingRule{
                route.hops[i], route.hops[i - 1], route.hops[i + 1],
                tree_index, PhaseDirection::kBroadcast});
            rules.push_back(ForwardingRule{
                route.hops[i], route.hops[i + 1], route.hops[i - 1],
                tree_index, PhaseDirection::kReduction});
        }
    }
    return rules;
}

const std::vector<ForwardingRule>&
cachedForwardingRules(const TreeEmbedding& embedding, int tree_index)
{
    CCUBE_CHECK(tree_index >= 0 &&
                    tree_index < ForwardingRuleCache::kMaxTreeIndex,
                "tree index " << tree_index << " out of cache range");
    CCUBE_CHECK(embedding.forwarding_cache,
                "embedding has no forwarding cache");
    ForwardingRuleCache& cache = *embedding.forwarding_cache;
    std::call_once(cache.once[tree_index], [&]() {
        cache.rules[tree_index] =
            extractForwardingRules(embedding, tree_index);
    });
    return cache.rules[tree_index];
}

std::vector<ForwardingRule>
extractForwardingRules(const DoubleTreeEmbedding& embedding)
{
    std::vector<ForwardingRule> rules =
        extractForwardingRules(embedding.tree0, 0);
    const std::vector<ForwardingRule> tree1 =
        extractForwardingRules(embedding.tree1, 1);
    rules.insert(rules.end(), tree1.begin(), tree1.end());
    return rules;
}

std::vector<NodeId>
transitNodes(const std::vector<ForwardingRule>& rules)
{
    std::vector<NodeId> nodes;
    for (const ForwardingRule& rule : rules) {
        if (std::find(nodes.begin(), nodes.end(), rule.transit) ==
            nodes.end()) {
            nodes.push_back(rule.transit);
        }
    }
    std::sort(nodes.begin(), nodes.end());
    return nodes;
}

bool
routesAvoidHost(const Graph& graph, const TreeEmbedding& embedding)
{
    for (const Route& route : embedding.routes) {
        for (std::size_t i = 0; i + 1 < route.hops.size(); ++i) {
            bool has_nvlink = false;
            for (int id : graph.channelIds(route.hops[i],
                                           route.hops[i + 1])) {
                if (graph.channel(id).kind == LinkKind::kNvlink)
                    has_nvlink = true;
            }
            if (!has_nvlink)
                return false;
        }
    }
    return true;
}

} // namespace topo
} // namespace ccube
