# Empty dependencies file for abl_queue_granularity.
# This may be replaced when dependencies are built.
