#ifndef CCUBE_SWEEP_SWEEP_H_
#define CCUBE_SWEEP_SWEEP_H_

/**
 * @file
 * Deterministic parallel sweep runner.
 *
 * Every headline figure is produced by sweeping the single-threaded
 * discrete-event simulator over an algorithm × message-size ×
 * node-count grid; the configurations are independent, so the grid is
 * embarrassingly parallel. sweep::run() executes a vector of tasks on
 * a thread pool while keeping every observable output byte-identical
 * to the serial run:
 *
 *  - each task writes its results into its own pre-assigned slot
 *    (callers index by task, never append from workers);
 *  - while an obs capture is enabled, each task records into a
 *    *private* TraceRecorder/MetricRegistry (installed thread-locally
 *    via ScopedTraceRedirect/ScopedMetricsRedirect) and the captures
 *    are absorbed into the parent in task-index order — exactly
 *    reproducing the sim-epoch accumulation of a serial run;
 *  - `--jobs=1` takes the same capture/merge path, so job count can
 *    never change the output, only the wall clock.
 *
 * Tasks must not touch shared mutable state (the DES simulations they
 * run are per-task by construction); anything a task wants to report
 * goes into its slot and is printed by the caller afterwards.
 */

#include <cstddef>
#include <functional>
#include <vector>

namespace ccube {

namespace util {
class Flags;
}

namespace sweep {

/** Pool configuration. */
struct Options {
    /** Worker threads; <= 0 selects the hardware concurrency. */
    int jobs = 0;

    /**
     * Give each task a private obs capture merged in task order
     * (only relevant while the parent recorder/registry is enabled).
     * Turn off for compute-only sweeps that never record, e.g. the
     * embedding-search attempt pool.
     */
    bool capture_obs = true;

    /** Reads `--jobs=N` (default: hardware concurrency). */
    static Options fromFlags(const util::Flags& flags);

    /** Worker count actually used for @p task_count tasks (>= 1). */
    int effectiveJobs(std::size_t task_count) const;
};

/** One unit of sweep work. */
using Task = std::function<void()>;

/**
 * Runs every task exactly once, possibly concurrently, and returns
 * when all have finished. Task exceptions are rethrown (first by task
 * index) after the pool drains.
 */
void run(const Options& options, std::vector<Task> tasks);

/** Convenience: runs task(0) … task(count-1) through run(). */
void runIndexed(const Options& options, std::size_t count,
                const std::function<void(std::size_t)>& task);

/**
 * True on a thread currently executing a sweep task. Code that is
 * jobs-invariant only because a side effect is suppressed during
 * sweeps (e.g. the ccl::Tuner's wall-clock measurement refinement)
 * branches on this.
 */
bool inSweepTask();

} // namespace sweep
} // namespace ccube

#endif // CCUBE_SWEEP_SWEEP_H_
