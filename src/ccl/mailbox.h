#ifndef CCUBE_CCL_MAILBOX_H_
#define CCUBE_CCL_MAILBOX_H_

/**
 * @file
 * P2P chunk mailbox: the receive-buffer abstraction between ranks.
 *
 * Models the per-channel receive buffers that the paper's persistent
 * kernels manage with device-side semaphores: a bounded single-
 * producer / single-consumer ring of float chunks. Flow control uses
 * exactly the post/wait protocol of Fig. 11.
 *
 * Fast path: slots are fixed-capacity buffers that are allocated once
 * (first use, or via reserve()) and then reused forever — a send never
 * resizes, and every consume variant reads in place out of the slot
 * buffer. consume() exposes the slot to the caller directly, so
 * forwarders move chunks downstream without a staging copy, mirroring
 * the LL-style "operate on the receive buffer" protocols of real NCCL.
 */

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "ccl/sync_primitives.h"

namespace ccube {
namespace ccl {

/**
 * Bounded SPSC queue of float chunks with an integer tag.
 */
class Mailbox
{
  public:
    /** In-place consumer: sees the arrived chunk and its tag. */
    using Visitor = std::function<void(std::span<const float> data,
                                       int tag)>;

    /** Creates a mailbox with @p slots receive buffers. */
    explicit Mailbox(int slots);

    Mailbox(const Mailbox&) = delete;
    Mailbox& operator=(const Mailbox&) = delete;

    /**
     * Preallocates every slot buffer to hold @p elems floats, so the
     * steady state never allocates (slot capacity only ever grows).
     */
    void reserve(std::size_t elems);

    /**
     * Copies @p data into the next free slot (blocking while all
     * receive buffers are occupied) and posts its arrival. Reuses the
     * slot's existing capacity; allocates only when the chunk is
     * larger than anything the slot has carried before.
     */
    void send(std::span<const float> data, int tag = 0);

    /**
     * Blocks until a chunk arrives, copies it into @p out (resized to
     * match), frees the receive buffer, and returns the tag. The slot
     * buffer is retained for reuse.
     */
    int recv(std::vector<float>& out);

    /**
     * Receives directly into @p out via a single vectorized copy; the
     * incoming chunk must have exactly out.size() elements.
     */
    int recvInto(std::span<float> out);

    /**
     * Receives and element-wise accumulates into @p out (the reduction
     * step of AllReduce) via a single vectorized accumulate loop over
     * the slot buffer; sizes must match. Returns the tag.
     */
    int recvReduce(std::span<float> out);

    /**
     * Blocks until a chunk arrives and runs @p visit on the slot
     * buffer in place (zero staging copies), then frees the receive
     * buffer. The span is valid only during the visit. Returns the
     * tag.
     */
    int consume(const Visitor& visit);

    /** Number of receive buffers. */
    int slots() const { return static_cast<int>(ring_.size()); }

    /** Total chunks delivered (for telemetry/tests). */
    std::int64_t delivered() const { return delivered_.value(); }

    /**
     * Names this mailbox for trace spans (e.g. "mb 0->1/f2", set by
     * the Communicator at creation). Post/wait spans then carry the
     * label; an unlabeled mailbox still traces as "mb ?".
     */
    void setTraceLabel(std::string label);

    /**
     * Flow id this mailbox carries (Communicator::Flow), reported in
     * CollectiveError when a rank is caught blocked here. -1 when the
     * mailbox lives outside a communicator.
     */
    void setFlowId(int flow);

    int flowId() const { return flow_; }

    /**
     * Discards any undelivered chunks and reinitializes the flow-
     * control state, as if freshly constructed (slot capacity is
     * kept). Only valid while no thread is using the mailbox — the
     * Communicator calls this from clearAbort(), after an aborted
     * collective has fully unwound, so the next collective does not
     * consume stale in-flight messages.
     */
    void reset();

  private:
    struct Slot {
        std::vector<float> data; ///< capacity persists across reuse
        std::size_t size = 0;    ///< valid prefix of data
        int tag = 0;
    };

    /** Runs @p consume on the arrived slot, then releases it. */
    template <typename Fn>
    int consumeSlot(Fn&& consume);

    std::vector<Slot> ring_;
    BoundedSemaphore full_;
    BoundedSemaphore empty_;
    std::size_t head_ = 0; ///< producer cursor (producer thread only)
    std::size_t tail_ = 0; ///< consumer cursor (consumer thread only)
    // Delivery sequence numbers stamped on post/wait trace spans so the
    // analyzer can pair them into cross-rank dependency edges. SPSC
    // FIFO order means wait #n always consumes post #n. Incremented
    // unconditionally (one add per op) so the pairing stays aligned
    // even when tracing is toggled mid-stream.
    std::int64_t post_seq_ = 0; ///< producer thread only
    std::int64_t wait_seq_ = 0; ///< consumer thread only
    CheckableCounter delivered_;
    std::string trace_label_ = "mb ?";
    int flow_ = -1;
};

} // namespace ccl
} // namespace ccube

#endif // CCUBE_CCL_MAILBOX_H_
