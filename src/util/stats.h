#ifndef CCUBE_UTIL_STATS_H_
#define CCUBE_UTIL_STATS_H_

/**
 * @file
 * Small statistics accumulators used by benchmarks and reports.
 */

#include <algorithm>
#include <cstddef>
#include <limits>
#include <vector>

namespace ccube {
namespace util {

/**
 * Online accumulator for min / max / mean / variance of a sample stream.
 *
 * Uses Welford's algorithm so that single-pass accumulation is
 * numerically stable even for long benchmark runs.
 */
class RunningStats
{
  public:
    /** Adds one sample. Inline: this sits on per-grant hot paths of
     *  the discrete-event simulator. */
    void add(double x)
    {
        ++count_;
        const double delta = x - mean_;
        mean_ += delta / static_cast<double>(count_);
        m2_ += delta * (x - mean_);
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }

    /** Merges another accumulator into this one. */
    void merge(const RunningStats& other);

    /** Number of samples observed. */
    std::size_t count() const { return count_; }

    /** Sample mean; 0 when empty. */
    double mean() const { return count_ ? mean_ : 0.0; }

    /** Unbiased sample variance; 0 for fewer than two samples. */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Smallest sample; +inf when empty. */
    double min() const { return min_; }

    /** Largest sample; -inf when empty. */
    double max() const { return max_; }

    /** Sum of all samples. */
    double sum() const { return mean_ * static_cast<double>(count_); }

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Computes the @p q quantile (0 <= q <= 1) of @p sorted, which must
 * already be in ascending order, by linear interpolation. No copy.
 */
double quantileSorted(const std::vector<double>& sorted, double q);

/**
 * Computes the @p q quantile (0 <= q <= 1) of @p samples by linear
 * interpolation, sorting the vector in place. The no-copy variant for
 * hot paths that own their sample buffer; call quantileSorted() for
 * further quantiles of the same vector.
 */
double quantileInPlace(std::vector<double>& samples, double q);

/**
 * Computes the @p q quantile (0 <= q <= 1) of @p samples by linear
 * interpolation; the input vector is copied and sorted internally.
 * Convenience wrapper over quantileInPlace() for cold paths.
 */
double quantile(std::vector<double> samples, double q);

/** Geometric mean of strictly positive samples; 0 when empty. */
double geomean(const std::vector<double>& samples);

} // namespace util
} // namespace ccube

#endif // CCUBE_UTIL_STATS_H_
