#include "ccl/overlapped_tree_allreduce.h"

namespace ccube {
namespace ccl {

AllReduceTrace
overlappedTreeAllReduce(Communicator& comm, RankBuffers& buffers,
                        const topo::TreeEmbedding& embedding,
                        int num_chunks, TreeFlowIds flows,
                        Protocol proto)
{
    return treeAllReduce(comm, buffers, embedding, num_chunks,
                         TreePhaseMode::kOverlapped, flows, {}, proto);
}

} // namespace ccl
} // namespace ccube
