#ifndef CCUBE_DNN_CATALOG_H_
#define CCUBE_DNN_CATALOG_H_

/**
 * @file
 * Workload catalog: the networks evaluated by the paper (§V-A) plus an
 * MLPerf-like suite for the Fig. 1 characterization.
 *
 * All models are shape-derived (see shapes.h); parameter totals land
 * close to the published counts (ZFNet ≈ 60 M, VGG-16 ≈ 138 M,
 * ResNet-50 ≈ 25.6 M).
 */

#include <string>
#include <vector>

#include "dnn/network.h"

namespace ccube {
namespace dnn {

/** ZFNet (Zeiler & Fergus) — the paper's "simple CNN". */
NetworkModel buildZfNet();

/** AlexNet — ZFNet's ancestor, for sanity comparisons. */
NetworkModel buildAlexNet();

/** VGG-16 configuration D — backbone of Single Stage Detector. */
NetworkModel buildVgg16();

/** ResNet-50 v1 — backbone of Mask R-CNN. */
NetworkModel buildResnet50();

/** ResNet-101 v1 — the deeper variant (more layers, same pattern). */
NetworkModel buildResnet101();

/** SSD-style detector: VGG-16 backbone + detection heads. */
NetworkModel buildSsdVgg16();

/** Mask R-CNN-style detector: ResNet-50 backbone + FPN/heads. */
NetworkModel buildMaskRcnnR50();

/** Neural Collaborative Filtering: embeddings + small MLP. */
NetworkModel buildNcf();

/** GNMT-style LSTM translator. */
NetworkModel buildGnmt();

/** Transformer (base) translator. */
NetworkModel buildTransformer();

/**
 * One Fig. 1 workload: a model plus the conditions it trains under.
 */
struct Workload {
    std::string label;
    NetworkModel model;
    int batch_per_gpu = 32;
    /**
     * Bytes all-reduced per iteration. Usually the model's dense
     * parameter bytes; NCF overrides it because its embedding tables
     * exchange sparse updates rather than dense AllReduce.
     */
    double allreduce_bytes = 0.0;
};

/** The MLPerf-like suite used to reproduce Fig. 1. */
std::vector<Workload> mlperfSuite();

} // namespace dnn
} // namespace ccube

#endif // CCUBE_DNN_CATALOG_H_
