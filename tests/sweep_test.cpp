/**
 * @file
 * Tests for the sweep:: parallel runner. The load-bearing property is
 * determinism: a grid executed with --jobs=8 must produce the same
 * numeric results and the same absorbed obs capture, byte for byte,
 * as --jobs=1 — that is what licenses the figure benches to fan out.
 * Also covers task coverage, job clamping, exception propagation, and
 * jobs-invariance of the parallel embedding search.
 */

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "ccl/tuner.h"
#include "obs/metrics.h"
#include "obs/monitor.h"
#include "obs/trace.h"
#include "sim/simulation.h"
#include "simnet/channel.h"
#include "simnet/double_tree_schedule.h"
#include "simnet/ring_schedule.h"
#include "sweep/sweep.h"
#include "topo/dgx1.h"
#include "topo/double_tree.h"
#include "topo/embedding_search.h"
#include "util/units.h"

namespace ccube {
namespace {

sweep::Options
withJobs(int jobs)
{
    sweep::Options options;
    options.jobs = jobs;
    return options;
}

TEST(SweepRun, RunsEveryTaskExactlyOnce)
{
    for (int jobs : {1, 2, 8}) {
        for (std::size_t count : {std::size_t{0}, std::size_t{1},
                                  std::size_t{3}, std::size_t{64}}) {
            std::vector<std::atomic<int>> hits(count);
            sweep::runIndexed(withJobs(jobs), count,
                              [&](std::size_t i) { ++hits[i]; });
            for (std::size_t i = 0; i < count; ++i)
                EXPECT_EQ(hits[i].load(), 1)
                    << "jobs=" << jobs << " task " << i;
        }
    }
}

TEST(SweepRun, EffectiveJobsClampsToTaskCount)
{
    EXPECT_EQ(withJobs(8).effectiveJobs(3), 3);
    EXPECT_EQ(withJobs(1).effectiveJobs(100), 1);
    EXPECT_EQ(withJobs(4).effectiveJobs(100), 4);
    EXPECT_GE(withJobs(0).effectiveJobs(100), 1); // hardware pick
    EXPECT_EQ(withJobs(8).effectiveJobs(0), 8);
}

TEST(SweepRun, RethrowsFirstExceptionByTaskIndex)
{
    for (int jobs : {1, 8}) {
        std::atomic<int> completed{0};
        try {
            sweep::runIndexed(withJobs(jobs), 64, [&](std::size_t i) {
                if (i == 50)
                    throw std::runtime_error("late failure");
                if (i == 10)
                    throw std::runtime_error("early failure");
                ++completed;
            });
            FAIL() << "expected a rethrown task exception";
        } catch (const std::runtime_error& error) {
            // First by task index, not by completion order.
            EXPECT_STREQ(error.what(), "early failure");
        }
        // The pool drains before rethrowing: every non-throwing task
        // still ran.
        EXPECT_EQ(completed.load(), 62);
    }
}

// --- Byte-identical parallel grid ------------------------------------

struct Cell {
    double completion = 0.0;
    double turnaround = 0.0;

    bool
    operator==(const Cell& other) const
    {
        // Exact equality on purpose: the parallel run executes the
        // same serial simulations, so there is no tolerance to grant.
        return completion == other.completion &&
               turnaround == other.turnaround;
    }
};

/**
 * Runs a small fig14-style grid (message size × chunk count on the
 * DGX-1 double tree) under an enabled trace capture and returns the
 * trace JSON; per-cell results land in @p cells. Only simulated-time
 * spans are recorded here, so the JSON is a pure function of the grid.
 */
std::string
runGrid(int jobs, std::vector<Cell>& cells)
{
    const topo::Graph graph = topo::makeDgx1();
    const topo::DoubleTreeEmbedding embedding =
        topo::makeDgx1DoubleTree(graph);
    const std::vector<double> sizes{util::mib(1), util::mib(4)};
    const std::vector<int> chunk_counts{8, 32};

    obs::TraceRecorder recorder;
    recorder.enable();
    std::string json;
    {
        // Make the local recorder the absorb target of the sweep, so
        // the test neither touches nor depends on process-global obs
        // state.
        obs::ScopedTraceRedirect redirect(&recorder);
        cells.assign(sizes.size() * chunk_counts.size(), Cell{});
        sweep::runIndexed(
            withJobs(jobs), cells.size(), [&](std::size_t i) {
                const double bytes = sizes[i / chunk_counts.size()];
                const int chunks =
                    chunk_counts[i % chunk_counts.size()];
                sim::Simulation sim;
                simnet::Network net(sim, graph);
                const auto result = simnet::runDoubleTreeSchedule(
                    sim, net, embedding, bytes,
                    simnet::PhaseMode::kOverlapped, chunks);
                net.closeTraceEpoch(result.completion_time);
                cells[i] =
                    Cell{result.completion_time,
                         result.turnaroundTime()};
            });
    }
    std::ostringstream out;
    recorder.writeJson(out);
    return out.str();
}

TEST(SweepRun, ParallelGridMatchesSerialByteForByte)
{
    std::vector<Cell> serial_cells;
    const std::string serial = runGrid(1, serial_cells);
    ASSERT_FALSE(serial_cells.empty());
    EXPECT_NE(serial.find("\"traceEvents\""), std::string::npos);
    // The grid actually recorded channel spans, so the comparison
    // below is not vacuous.
    EXPECT_NE(serial.find("simnet"), std::string::npos);

    for (int jobs : {2, 8}) {
        std::vector<Cell> parallel_cells;
        const std::string parallel = runGrid(jobs, parallel_cells);
        EXPECT_EQ(serial_cells, parallel_cells) << "jobs=" << jobs;
        EXPECT_EQ(serial, parallel) << "jobs=" << jobs;
    }
}

TEST(SweepRun, MetricsMergeIsJobsInvariant)
{
    // Counters/histograms absorbed from per-task registries must not
    // depend on the job count. (Gauges carrying wall-clock rates are
    // excluded by construction: the tasks here record none.)
    auto run = [](int jobs) {
        obs::MetricRegistry registry;
        registry.enable();
        std::string json;
        {
            obs::ScopedMetricsRedirect redirect(&registry);
            sweep::runIndexed(
                withJobs(jobs), 8, [&](std::size_t i) {
                    obs::MetricRegistry& sink =
                        obs::MetricRegistry::global();
                    sink.addCounter("sweep.test.tasks", 1.0);
                    sink.observe("sweep.test.index",
                                 static_cast<double>(i));
                });
        }
        std::ostringstream out;
        registry.writeJson(out);
        return out.str();
    };
    const std::string serial = run(1);
    EXPECT_NE(serial.find("sweep.test.tasks"), std::string::npos);
    EXPECT_EQ(serial, run(8));
}

TEST(SweepRun, MonitorSnapshotsAreJobsInvariant)
{
    // The monitor's JSONL series (heartbeat gauges + collective
    // edges, absorbed from per-task monitors in task-index order)
    // must be byte-identical across job counts: snapshot timestamps
    // are simulated time and run ordinals, never wall clock.
    const topo::Graph graph = topo::makeDgx1();
    const topo::DoubleTreeEmbedding embedding =
        topo::makeDgx1DoubleTree(graph);
    auto run = [&](int jobs) {
        obs::Monitor monitor;
        monitor.setInterval(1e-4);
        monitor.enable();
        std::string jsonl;
        {
            obs::ScopedMonitorRedirect redirect(&monitor);
            sweep::runIndexed(withJobs(jobs), 4, [&](std::size_t i) {
                sim::Simulation sim;
                simnet::Network net(sim, graph);
                simnet::runDoubleTreeSchedule(
                    sim, net, embedding, util::mib(1 << i),
                    simnet::PhaseMode::kOverlapped, 8);
            });
        }
        std::ostringstream out;
        monitor.writeJsonl(out);
        return out.str();
    };
    const std::string serial = run(1);
    EXPECT_NE(serial.find("\"trigger\": \"heartbeat\""),
              std::string::npos);
    EXPECT_NE(serial.find("chan."), std::string::npos);
    EXPECT_NE(serial.find("allreduce.double_tree"), std::string::npos);
    for (int jobs : {2, 8})
        EXPECT_EQ(serial, run(jobs)) << "jobs=" << jobs;
}

TEST(SweepRun, TunerTablesAreJobsInvariant)
{
    // The tuner's measurement refinement is wall-clock-based and must
    // be suppressed inside sweep tasks (sweep::inSweepTask()), so the
    // tables every task sees — and the per-protocol DES results built
    // from them — are identical at jobs=1 and jobs=8, byte for byte.
    EXPECT_FALSE(sweep::inSweepTask());
    const topo::Graph graph = topo::makeDgx1();
    auto run = [&](int jobs) {
        ccl::Tuner::global().clearCache();
        std::vector<std::string> tables(4);
        std::vector<double> completions(4, 0.0);
        sweep::runIndexed(withJobs(jobs), 4, [&](std::size_t i) {
            EXPECT_TRUE(sweep::inSweepTask());
            tables[i] = ccl::Tuner::global().formatTable(graph, 8);
            const std::size_t elems = std::size_t{256} << (4 * i);
            const ccl::Protocol proto =
                ccl::Tuner::global().chooseProtocol(
                    graph, 8, elems,
                    ccl::AllReduceAlgorithm::kRing);
            sim::Simulation sim;
            simnet::Network net(sim, graph);
            const topo::RingEmbedding ring =
                topo::findHamiltonianRing(graph, 8);
            completions[i] =
                simnet::runRingSchedule(
                    sim, net, ring,
                    static_cast<double>(elems) * sizeof(float), proto)
                    .completion_time;
        });
        std::ostringstream out;
        for (std::size_t i = 0; i < tables.size(); ++i)
            out << tables[i] << "|" << completions[i] << "\n";
        return out.str();
    };
    const std::string serial = run(1);
    EXPECT_NE(serial.find("tuner table"), std::string::npos);
    for (int jobs : {2, 8})
        EXPECT_EQ(serial, run(jobs)) << "jobs=" << jobs;
    EXPECT_FALSE(sweep::inSweepTask());
}

TEST(SweepRun, EmbeddingSearchIsJobsInvariant)
{
    const topo::Graph dgx1 = topo::makeDgx1();
    for (std::uint64_t seed : {7ull, 42ull}) {
        topo::EmbeddingSearchOptions serial_options;
        serial_options.seed = seed;
        serial_options.jobs = 1;
        topo::EmbeddingSearchOptions parallel_options = serial_options;
        parallel_options.jobs = 8;
        const auto a =
            topo::findConflictFreeDoubleTree(dgx1, serial_options);
        const auto b =
            topo::findConflictFreeDoubleTree(dgx1, parallel_options);
        ASSERT_TRUE(a.has_value()) << "seed " << seed;
        ASSERT_TRUE(b.has_value()) << "seed " << seed;
        EXPECT_EQ(a->tree0.tree.edges(), b->tree0.tree.edges());
        EXPECT_EQ(a->tree1.tree.edges(), b->tree1.tree.edges());
        for (const auto& trees :
             {std::make_pair(&a->tree0, &b->tree0),
              std::make_pair(&a->tree1, &b->tree1)}) {
            ASSERT_EQ(trees.first->routes.size(),
                      trees.second->routes.size());
            for (std::size_t r = 0; r < trees.first->routes.size();
                 ++r)
                EXPECT_EQ(trees.first->routes[r].hops,
                          trees.second->routes[r].hops);
        }
    }
}

} // namespace
} // namespace ccube
