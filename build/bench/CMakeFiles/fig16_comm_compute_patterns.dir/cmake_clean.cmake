file(REMOVE_RECURSE
  "CMakeFiles/fig16_comm_compute_patterns.dir/fig16_comm_compute_patterns.cpp.o"
  "CMakeFiles/fig16_comm_compute_patterns.dir/fig16_comm_compute_patterns.cpp.o.d"
  "fig16_comm_compute_patterns"
  "fig16_comm_compute_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_comm_compute_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
