#ifndef CCUBE_TOPO_EMBEDDING_SEARCH_H_
#define CCUBE_TOPO_EMBEDDING_SEARCH_H_

/**
 * @file
 * Automated search for conflict-free double-tree embeddings.
 *
 * The paper hand-crafts its DGX-1 embedding (Fig. 10(b,c)); this
 * module automates the construction for arbitrary GPU-to-GPU
 * topologies: find two spanning binary trees (with detours for
 * missing edges) such that, when both run the overlapped algorithm
 * simultaneously, no unidirectional channel is oversubscribed —
 * cross-tree sharing is only allowed where the physical pair has
 * enough parallel links.
 *
 * Randomized-greedy with restarts: trees are grown from random roots
 * by BFS over edges with remaining capacity; detour routes consume
 * capacity on every segment. Each attempt draws from its own RNG
 * stream derived from (seed, attempt), so attempts are independent
 * and the search can fan restarts across the sweep thread pool while
 * staying deterministic: attempts run in fixed batches, the winner is
 * the cheapest (total route hops, then lowest attempt index) success
 * of the earliest batch containing one, and the result is identical
 * for every `jobs` value. Channel budgets are flat arrays indexed by
 * channel id, and tree growth prunes against the best cost found in
 * *previous* batches (never the current one, which would race).
 */

#include <optional>

#include "topo/double_tree.h"
#include "topo/graph.h"

namespace ccube {
namespace topo {

/** Search knobs. */
struct EmbeddingSearchOptions {
    int num_ranks = 0;        ///< 0 = all graph nodes are ranks
    int max_attempts = 2000;  ///< randomized restarts
    std::uint64_t seed = 1;   ///< RNG seed (deterministic)
    int max_detour_hops = 2;  ///< longest allowed detour route
    int jobs = 1;             ///< attempt workers; <=0 = hardware
    /** Keep searching all attempts for the cheapest embedding instead
     *  of stopping at the first batch that contains a success. */
    bool exhaustive = false;
};

/**
 * Searches for a conflict-free double tree on @p graph. Returns
 * std::nullopt when no embedding was found within the attempt budget
 * (which does not prove none exists).
 */
std::optional<DoubleTreeEmbedding>
findConflictFreeDoubleTree(const Graph& graph,
                           const EmbeddingSearchOptions& options = {});

} // namespace topo
} // namespace ccube

#endif // CCUBE_TOPO_EMBEDDING_SEARCH_H_
