#include "ccl/fault.h"

#include <chrono>
#include <sstream>
#include <thread>

#include "obs/context.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace ccube {
namespace ccl {

namespace {

thread_local CommFaultContext* t_fault_context = nullptr;

std::string
formatInfo(const CollectiveError::Info& info)
{
    std::ostringstream out;
    out << "collective aborted";
    if (!info.op.empty())
        out << " in " << info.op;
    if (info.failed_rank >= 0)
        out << ": rank " << info.failed_rank;
    if (!info.mailbox.empty())
        out << " blocked on " << info.mailbox;
    if (info.flow >= 0)
        out << " (flow " << info.flow << ")";
    if (info.last_posted_seq >= 0)
        out << ", last posted seq " << info.last_posted_seq;
    if (info.ops_completed >= 0)
        out << ", " << info.ops_completed << " mailbox ops";
    if (info.deadline_s > 0.0)
        out << ", deadline " << info.deadline_s << "s";
    if (!info.reason.empty())
        out << " — " << info.reason;
    if (!info.stall_chain.empty())
        out << "; stall chain: " << info.stall_chain;
    return out.str();
}

} // namespace

CollectiveError::CollectiveError(Info info)
    : std::runtime_error(formatInfo(info)), info_(std::move(info))
{
}

AbortedWait::AbortedWait()
    : std::runtime_error("wait aborted: communicator abort epoch tripped")
{
}

RankKilled::RankKilled(int rank)
    : std::runtime_error("rank " + std::to_string(rank) +
                         " killed by fault injector"),
      rank_(rank)
{
}

bool
AbortState::trip(CollectiveError::Info info)
{
    std::lock_guard<std::mutex> guard(mutex_);
    trip_attempts_.fetch_add(1, std::memory_order_release);
    std::uint64_t epoch = epoch_.load(std::memory_order_relaxed);
    if ((epoch & 1) != 0)
        return false; // already aborted this generation
    info_ = std::move(info);
    epoch_.store(epoch + 1, std::memory_order_release);
    return true;
}

void
AbortState::clear()
{
    std::lock_guard<std::mutex> guard(mutex_);
    std::uint64_t epoch = epoch_.load(std::memory_order_relaxed);
    if ((epoch & 1) != 0)
        epoch_.store(epoch + 1, std::memory_order_release);
}

bool
AbortState::clearIfEpoch(std::uint64_t expected_epoch,
                         std::uint64_t expected_attempts)
{
    std::lock_guard<std::mutex> guard(mutex_);
    const std::uint64_t epoch =
        epoch_.load(std::memory_order_relaxed);
    if (epoch != expected_epoch)
        return false; // a newer generation tripped since the capture
    if (trip_attempts_.load(std::memory_order_relaxed) !=
        expected_attempts)
        return false; // a same-generation trip raced the flush
    if ((epoch & 1) != 0)
        epoch_.store(epoch + 1, std::memory_order_release);
    return true;
}

CollectiveError::Info
AbortState::info() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return info_;
}

void
FaultInjector::arm(const Fault& fault)
{
    CCUBE_CHECK(fault.rank >= 0 && fault.rank < kMaxRanks,
                "fault rank out of range: " << fault.rank);
    std::lock_guard<std::mutex> guard(mutex_);
    plan_.push_back(fault);
    fired_.push_back(false);
}

void
FaultInjector::reset()
{
    std::lock_guard<std::mutex> guard(mutex_);
    plan_.clear();
    fired_.clear();
    for (Slot& slot : slots_)
        slot.ops.store(0, std::memory_order_relaxed);
}

std::int64_t
FaultInjector::opsSeen(int rank) const
{
    if (rank < 0 || rank >= kMaxRanks)
        return 0;
    return slots_[rank].ops.load(std::memory_order_relaxed);
}

bool
FaultInjector::onOp(int rank, Fault* out)
{
    if (rank < 0 || rank >= kMaxRanks)
        return false;
    const std::int64_t op =
        slots_[rank].ops.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> guard(mutex_);
    for (std::size_t i = 0; i < plan_.size(); ++i) {
        if (fired_[i] || plan_[i].rank != rank || plan_[i].at_op != op)
            continue;
        fired_[i] = true;
        *out = plan_[i];
        return true;
    }
    return false;
}

CommFaultContext::CommFaultContext(int num_ranks)
    : num_ranks_(num_ranks),
      slots_(static_cast<std::size_t>(num_ranks > 0 ? num_ranks : 1)),
      waitfor_(num_ranks)
{
}

void
CommFaultContext::setInjector(FaultInjector* injector)
{
    injector_.store(injector, std::memory_order_release);
}

void
CommFaultContext::beginCollective(const char* op)
{
    for (RankSlot& slot : slots_) {
        slot.ops.store(0, std::memory_order_relaxed);
        slot.posted_seq.store(-1, std::memory_order_relaxed);
        slot.wait_label.store(nullptr, std::memory_order_relaxed);
        slot.wait_flow.store(-1, std::memory_order_relaxed);
        slot.dead.store(false, std::memory_order_relaxed);
    }
    waitfor_.reset();
    op_.store(op, std::memory_order_release);
}

void
CommFaultContext::endCollective()
{
    // Progress table and op name are kept for post-mortem reads; the
    // next beginCollective resets them.
}

const char*
CommFaultContext::currentOp() const
{
    const char* op = op_.load(std::memory_order_acquire);
    return op != nullptr ? op : "";
}

CommFaultContext::RankSlot&
CommFaultContext::slotForCurrentThread()
{
    const int rank = obs::threadRank();
    if (rank >= 0 && rank < num_ranks_)
        return slots_[static_cast<std::size_t>(rank)];
    return slots_[0];
}

void
CommFaultContext::onMailboxOp(const std::string& label, int flow)
{
    const int rank = obs::threadRank();
    FaultInjector* injector = injector_.load(std::memory_order_acquire);
    if (injector != nullptr && rank >= 0) {
        FaultInjector::Fault fault;
        if (injector->onOp(rank, &fault)) {
            obs::TraceRecorder& recorder = obs::TraceRecorder::global();
            switch (fault.action) {
            case FaultInjector::Action::kKill:
                markDead(rank);
                if (recorder.enabled())
                    recorder.instantEvent(
                        "fault.kill", "ccl.fault",
                        obs::pids::cclRank(rank), 0,
                        recorder.wallNowUs());
                throw RankKilled(rank);
            case FaultInjector::Action::kStall: {
                markDead(rank);
                noteWaitBegin("<stalled>", flow);
                if (recorder.enabled())
                    recorder.instantEvent(
                        "fault.stall", "ccl.fault",
                        obs::pids::cclRank(rank), 0,
                        recorder.wallNowUs());
                // Wedge until the watchdog trips the abort epoch; the
                // poll throws AbortedWait on our behalf.
                while (true) {
                    abortPoll();
                    std::this_thread::yield();
                }
            }
            case FaultInjector::Action::kDelay:
                if (recorder.enabled())
                    recorder.instantEvent(
                        "fault.delay", "ccl.fault",
                        obs::pids::cclRank(rank), 0,
                        recorder.wallNowUs());
                std::this_thread::sleep_for(std::chrono::duration<double>(
                    fault.delay_s));
                break;
            }
        }
    }
    (void)label;
    slotForCurrentThread().ops.fetch_add(1, std::memory_order_relaxed);
}

void
CommFaultContext::noteWaitBegin(const char* label, int flow, int peer)
{
    RankSlot& slot = slotForCurrentThread();
    slot.wait_flow.store(flow, std::memory_order_relaxed);
    // Release: the watchdog dereferences this pointer (the mailbox's
    // label string) from its own thread, so publishing it must carry
    // the string contents with it.
    slot.wait_label.store(label, std::memory_order_release);
    // The wait-for graph only accepts the acting rank itself —
    // helper threads with no rank tag would otherwise alias slot 0.
    const int rank = obs::threadRank();
    if (rank >= 0 && rank < num_ranks_)
        waitfor_.noteWait(rank, peer, label, flow);
}

void
CommFaultContext::noteWaitEnd()
{
    RankSlot& slot = slotForCurrentThread();
    slot.wait_label.store(nullptr, std::memory_order_relaxed);
    slot.wait_flow.store(-1, std::memory_order_relaxed);
    const int rank = obs::threadRank();
    if (rank >= 0 && rank < num_ranks_)
        waitfor_.clearWait(rank);
}

void
CommFaultContext::notePosted(std::int64_t seq)
{
    slotForCurrentThread().posted_seq.store(seq,
                                            std::memory_order_relaxed);
}

CollectiveError::Info
CommFaultContext::deadlineInfo(double deadline_s) const
{
    CollectiveError::Info info;
    info.op = currentOp();
    info.deadline_s = deadline_s;

    // Walk the wait-for graph first, while every blocked rank's edge
    // is still registered: this runs inside the watchdog callback
    // before the abort epoch trips and wakes the waiters.
    const obs::WaitForRegistry::Chain chain = waitfor_.longestChain();
    if (!chain.empty()) {
        info.stall_chain = obs::WaitForRegistry::formatChain(chain);
        info.chain_terminus = chain.terminus;
        info.chain_len = static_cast<int>(chain.length());
    }

    // Blame: an injector-marked dead rank wins; otherwise the stall
    // chain's terminus (the rank everyone is transitively waiting
    // on); otherwise the rank that has completed the fewest mailbox
    // operations (lowest rank breaks ties).
    int blamed = -1;
    std::int64_t min_ops = 0;
    bool terminus_blamed = false;
    for (int rank = 0; rank < num_ranks_; ++rank) {
        const RankSlot& slot = slots_[static_cast<std::size_t>(rank)];
        if (slot.dead.load(std::memory_order_relaxed)) {
            blamed = rank;
            break;
        }
        const std::int64_t ops =
            slot.ops.load(std::memory_order_relaxed);
        if (blamed < 0 || ops < min_ops) {
            blamed = rank;
            min_ops = ops;
        }
    }
    if (blamed >= 0 &&
        !slots_[static_cast<std::size_t>(blamed)].dead.load(
            std::memory_order_relaxed) &&
        chain.terminus >= 0 && chain.terminus < num_ranks_ &&
        !chain.links.empty()) {
        blamed = chain.terminus;
        terminus_blamed = true;
    }
    if (blamed >= 0) {
        const RankSlot& slot = slots_[static_cast<std::size_t>(blamed)];
        info.failed_rank = blamed;
        info.ops_completed = slot.ops.load(std::memory_order_relaxed);
        info.last_posted_seq =
            slot.posted_seq.load(std::memory_order_relaxed);
        const char* label =
            slot.wait_label.load(std::memory_order_acquire);
        if (label != nullptr)
            info.mailbox = label;
        info.flow = slot.wait_flow.load(std::memory_order_relaxed);
        if (slot.dead.load(std::memory_order_relaxed))
            info.reason = "rank dead (fault injected)";
        else if (terminus_blamed)
            info.reason =
                "deadline exceeded; wait-for chain terminus blamed";
        else
            info.reason = "deadline exceeded; slowest rank blamed";
    } else {
        info.reason = "deadline exceeded";
    }
    return info;
}

void
CommFaultContext::markDead(int rank)
{
    if (rank >= 0 && rank < num_ranks_) {
        slots_[static_cast<std::size_t>(rank)].dead.store(
            true, std::memory_order_release);
        waitfor_.markDead(rank);
    }
}

CommFaultContext*
CommFaultContext::current()
{
    return t_fault_context;
}

ScopedFaultContext::ScopedFaultContext(CommFaultContext* context)
    : previous_(t_fault_context)
{
    if (context != nullptr)
        t_fault_context = context;
}

ScopedFaultContext::~ScopedFaultContext()
{
    t_fault_context = previous_;
}

void
abortPoll()
{
    CommFaultContext* context = t_fault_context;
    if (context != nullptr && context->abortState().aborted())
        throw AbortedWait();
}

bool
abortPending()
{
    CommFaultContext* context = t_fault_context;
    return context != nullptr && context->abortState().aborted();
}

std::string
formatStallReport(const CollectiveError::Info& info)
{
    std::ostringstream out;
    out << "=== ccl stall report ===\n";
    out << "op:            "
        << (info.op.empty() ? "<unknown>" : info.op) << '\n';
    if (info.deadline_s > 0.0)
        out << "deadline:      " << info.deadline_s << " s\n";
    out << "blamed rank:   " << info.failed_rank << '\n';
    if (!info.mailbox.empty()) {
        out << "wait site:     " << info.mailbox;
        if (info.flow >= 0)
            out << " (flow " << info.flow << ")";
        out << '\n';
    }
    if (info.ops_completed >= 0)
        out << "mailbox ops:   " << info.ops_completed << '\n';
    if (info.last_posted_seq >= 0)
        out << "last post seq: " << info.last_posted_seq << '\n';
    if (!info.reason.empty())
        out << "cause:         " << info.reason << '\n';
    if (!info.stall_chain.empty()) {
        out << "wait-for chain (" << info.chain_len
            << " blocked, terminus r" << info.chain_terminus
            << "):\n  " << info.stall_chain << '\n';
    } else {
        out << "wait-for chain: <none captured>\n";
    }
    return out.str();
}

} // namespace ccl
} // namespace ccube
