#include "ccl/checkpoint.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace ccube {
namespace ccl {

namespace {

void
appendSplit(std::vector<ChunkLayout::Range>& out, std::size_t offset,
            std::size_t total, int chunks)
{
    const ChunkSplit split(total, chunks);
    for (int c = 0; c < chunks; ++c)
        out.push_back(ChunkLayout::Range{offset + split.begin(c),
                                         offset + split.end(c)});
}

} // namespace

ChunkLayout
ChunkLayout::ring(std::size_t total, int num_ranks)
{
    ChunkLayout layout;
    appendSplit(layout.ranges_, 0, total, num_ranks);
    return layout;
}

ChunkLayout
ChunkLayout::tree(std::size_t total, int num_chunks)
{
    ChunkLayout layout;
    appendSplit(layout.ranges_, 0, total, num_chunks);
    return layout;
}

ChunkLayout
ChunkLayout::doubleTree(std::size_t total, int chunks_per_tree)
{
    const std::size_t half = total / 2;
    ChunkLayout layout;
    appendSplit(layout.ranges_, 0, half, chunks_per_tree);
    appendSplit(layout.ranges_, half, total - half, chunks_per_tree);
    return layout;
}

void
ChunkCheckpoint::begin(const RankBuffers& buffers, ChunkLayout layout)
{
    CCUBE_CHECK(!buffers.empty(), "checkpoint needs rank buffers");
    num_ranks_ = static_cast<int>(buffers.size());
    layout_ = std::move(layout);
    snapshot_ = buffers;
    const int chunks = layout_.numChunks();
    CCUBE_CHECK(chunks > 0, "checkpoint needs at least one chunk");
    counts_ = std::make_unique<std::atomic<int>[]>(
        static_cast<std::size_t>(chunks));
    done_ = std::make_unique<std::atomic<std::uint8_t>[]>(
        static_cast<std::size_t>(chunks));
    for (int c = 0; c < chunks; ++c) {
        counts_[static_cast<std::size_t>(c)].store(
            0, std::memory_order_relaxed);
        done_[static_cast<std::size_t>(c)].store(
            0, std::memory_order_relaxed);
    }
}

AllReduceTrace::Observer
ChunkCheckpoint::observer(AllReduceTrace::Observer downstream)
{
    CCUBE_CHECK(active(), "checkpoint observer before begin()");
    return [this, downstream = std::move(downstream)](int rank,
                                                      int chunk) {
        if (chunk >= 0 && chunk < layout_.numChunks()) {
            const int seen =
                counts_[static_cast<std::size_t>(chunk)].fetch_add(
                    1, std::memory_order_acq_rel) +
                1;
            // Commit once every rank recorded the chunk: each rank's
            // slice then holds the final value (ranks record a chunk
            // at most once per run and never write a slice after
            // recording it).
            if (seen == num_ranks_)
                done_[static_cast<std::size_t>(chunk)].store(
                    1, std::memory_order_release);
        }
        if (downstream)
            downstream(rank, chunk);
    };
}

bool
ChunkCheckpoint::done(int chunk) const
{
    if (!active() || chunk < 0 || chunk >= layout_.numChunks())
        return false;
    return done_[static_cast<std::size_t>(chunk)].load(
               std::memory_order_acquire) != 0;
}

int
ChunkCheckpoint::doneCount() const
{
    if (!active())
        return 0;
    int count = 0;
    for (int c = 0; c < layout_.numChunks(); ++c)
        count += done(c) ? 1 : 0;
    return count;
}

bool
ChunkCheckpoint::complete() const
{
    return active() && doneCount() == layout_.numChunks();
}

SkipMask
ChunkCheckpoint::mask() const
{
    if (!active())
        return SkipMask{};
    std::vector<std::uint8_t> bits(
        static_cast<std::size_t>(layout_.numChunks()), 0);
    for (int c = 0; c < layout_.numChunks(); ++c)
        bits[static_cast<std::size_t>(c)] = done(c) ? 1 : 0;
    return SkipMask(std::move(bits));
}

void
ChunkCheckpoint::restoreIncomplete(RankBuffers& buffers) const
{
    CCUBE_CHECK(active(), "restore before begin()");
    CCUBE_CHECK(static_cast<int>(buffers.size()) == num_ranks_,
                "rank count changed under the checkpoint");
    for (int c = 0; c < layout_.numChunks(); ++c) {
        if (done(c))
            continue;
        const ChunkLayout::Range& range = layout_.range(c);
        for (int r = 0; r < num_ranks_; ++r) {
            const std::vector<float>& src =
                snapshot_[static_cast<std::size_t>(r)];
            std::vector<float>& dst =
                buffers[static_cast<std::size_t>(r)];
            std::copy(src.begin() + static_cast<std::ptrdiff_t>(
                                        range.begin),
                      src.begin() +
                          static_cast<std::ptrdiff_t>(range.end),
                      dst.begin() +
                          static_cast<std::ptrdiff_t>(range.begin));
        }
    }
}

void
ChunkCheckpoint::restoreAll(RankBuffers& buffers) const
{
    CCUBE_CHECK(active(), "restore before begin()");
    CCUBE_CHECK(static_cast<int>(buffers.size()) == num_ranks_,
                "rank count changed under the checkpoint");
    for (int r = 0; r < num_ranks_; ++r)
        buffers[static_cast<std::size_t>(r)] =
            snapshot_[static_cast<std::size_t>(r)];
}

void
ChunkCheckpoint::rearm()
{
    if (!active())
        return;
    for (int c = 0; c < layout_.numChunks(); ++c) {
        if (!done(c))
            counts_[static_cast<std::size_t>(c)].store(
                0, std::memory_order_relaxed);
    }
}

void
ChunkCheckpoint::reset()
{
    num_ranks_ = 0;
    layout_ = ChunkLayout{};
    snapshot_.clear();
    counts_.reset();
    done_.reset();
}

} // namespace ccl
} // namespace ccube
