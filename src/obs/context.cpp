#include "obs/context.h"

#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ccube {
namespace obs {

namespace {

thread_local int t_rank = -1;
thread_local int t_track = 0;

std::atomic<int> g_next_track{1};

} // namespace

void
setThreadRank(int rank)
{
    t_rank = rank;
}

int
threadRank()
{
    return t_rank;
}

int
threadTrack()
{
    if (t_track == 0)
        t_track = g_next_track.fetch_add(1, std::memory_order_relaxed);
    return t_track;
}

void
labelThread(const char* label)
{
    TraceRecorder& recorder = TraceRecorder::global();
    if (!recorder.enabled())
        return;
    const int rank = threadRank();
    recorder.setThreadName(pids::cclRank(rank), threadTrack(), label);
    recorder.setProcessName(pids::cclRank(rank),
                            rank >= 0
                                ? "ccl rank " + std::to_string(rank)
                                : std::string("ccl (no rank)"));
}

RankCounters&
RankCounters::global()
{
    static RankCounters counters;
    return counters;
}

RankCounters::Slot&
RankCounters::current()
{
    const int rank = t_rank;
    const int index = (rank >= 0 && rank < kMaxRanks) ? rank + 1 : 0;
    return slots_[index];
}

RankCounters::Slot&
RankCounters::slotFor(int rank)
{
    const int index = (rank >= 0 && rank < kMaxRanks) ? rank + 1 : 0;
    return slots_[index];
}

const RankCounters::Slot&
RankCounters::slot(int rank) const
{
    const int index = (rank >= 0 && rank < kMaxRanks) ? rank + 1 : 0;
    return slots_[index];
}

void
RankCounters::addCasRetries(std::uint64_t n)
{
    current().cas_retries.fetch_add(n, std::memory_order_relaxed);
}

void
RankCounters::addPostStall()
{
    current().post_stalls.fetch_add(1, std::memory_order_relaxed);
}

void
RankCounters::addWaitStall()
{
    current().wait_stalls.fetch_add(1, std::memory_order_relaxed);
}

void
RankCounters::addPostStallNs(std::uint64_t ns)
{
    current().post_stall_ns.fetch_add(ns, std::memory_order_relaxed);
}

void
RankCounters::addWaitStallNs(std::uint64_t ns)
{
    current().wait_stall_ns.fetch_add(ns, std::memory_order_relaxed);
}

void
RankCounters::addSlotFullStall()
{
    current().slot_full_stalls.fetch_add(1, std::memory_order_relaxed);
}

void
RankCounters::addMailboxSend()
{
    current().mailbox_sends.fetch_add(1, std::memory_order_relaxed);
}

void
RankCounters::addMailboxRecv()
{
    current().mailbox_recvs.fetch_add(1, std::memory_order_relaxed);
}

void
RankCounters::addExecutorTask()
{
    current().executor_tasks.fetch_add(1, std::memory_order_relaxed);
}

void
RankCounters::addExecutorPark()
{
    current().executor_parks.fetch_add(1, std::memory_order_relaxed);
}

void
RankCounters::addExecutorUnpark()
{
    current().executor_unparks.fetch_add(1, std::memory_order_relaxed);
}

void
RankCounters::noteExecutorQueueDepth(int rank, std::uint64_t depth)
{
    std::atomic<std::uint64_t>& peak =
        slotFor(rank).executor_queue_peak;
    std::uint64_t seen = peak.load(std::memory_order_relaxed);
    while (seen < depth &&
           !peak.compare_exchange_weak(seen, depth,
                                       std::memory_order_relaxed)) {
    }
}

void
RankCounters::addLLSpin(std::uint64_t ns)
{
    Slot& slot = current();
    slot.ll_spins.fetch_add(1, std::memory_order_relaxed);
    slot.ll_spin_ns.fetch_add(ns, std::memory_order_relaxed);
}

void
RankCounters::addSmPark()
{
    current().sm_parks.fetch_add(1, std::memory_order_relaxed);
}

void
RankCounters::addSmResume()
{
    current().sm_resumes.fetch_add(1, std::memory_order_relaxed);
}

void
RankCounters::addSmSteal()
{
    current().sm_steals.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t
RankCounters::casRetries(int rank) const
{
    return slot(rank).cas_retries.load(std::memory_order_relaxed);
}

std::uint64_t
RankCounters::postStalls(int rank) const
{
    return slot(rank).post_stalls.load(std::memory_order_relaxed);
}

std::uint64_t
RankCounters::waitStalls(int rank) const
{
    return slot(rank).wait_stalls.load(std::memory_order_relaxed);
}

std::uint64_t
RankCounters::postStallNs(int rank) const
{
    return slot(rank).post_stall_ns.load(std::memory_order_relaxed);
}

std::uint64_t
RankCounters::waitStallNs(int rank) const
{
    return slot(rank).wait_stall_ns.load(std::memory_order_relaxed);
}

std::uint64_t
RankCounters::slotFullStalls(int rank) const
{
    return slot(rank).slot_full_stalls.load(std::memory_order_relaxed);
}

std::uint64_t
RankCounters::mailboxSends(int rank) const
{
    return slot(rank).mailbox_sends.load(std::memory_order_relaxed);
}

std::uint64_t
RankCounters::mailboxRecvs(int rank) const
{
    return slot(rank).mailbox_recvs.load(std::memory_order_relaxed);
}

std::uint64_t
RankCounters::executorTasks(int rank) const
{
    return slot(rank).executor_tasks.load(std::memory_order_relaxed);
}

std::uint64_t
RankCounters::executorParks(int rank) const
{
    return slot(rank).executor_parks.load(std::memory_order_relaxed);
}

std::uint64_t
RankCounters::executorUnparks(int rank) const
{
    return slot(rank).executor_unparks.load(std::memory_order_relaxed);
}

std::uint64_t
RankCounters::executorQueuePeak(int rank) const
{
    return slot(rank).executor_queue_peak.load(
        std::memory_order_relaxed);
}

std::uint64_t
RankCounters::llSpins(int rank) const
{
    return slot(rank).ll_spins.load(std::memory_order_relaxed);
}

std::uint64_t
RankCounters::llSpinNs(int rank) const
{
    return slot(rank).ll_spin_ns.load(std::memory_order_relaxed);
}

std::uint64_t
RankCounters::smParks(int rank) const
{
    return slot(rank).sm_parks.load(std::memory_order_relaxed);
}

std::uint64_t
RankCounters::smResumes(int rank) const
{
    return slot(rank).sm_resumes.load(std::memory_order_relaxed);
}

std::uint64_t
RankCounters::smSteals(int rank) const
{
    return slot(rank).sm_steals.load(std::memory_order_relaxed);
}

namespace {

template <typename Member>
std::uint64_t
sumSlots(const RankCounters& counters, Member member)
{
    std::uint64_t total = 0;
    for (int rank = -1; rank < RankCounters::kMaxRanks; ++rank)
        total += (counters.*member)(rank);
    return total;
}

} // namespace

std::uint64_t
RankCounters::totalCasRetries() const
{
    return sumSlots(*this, &RankCounters::casRetries);
}

std::uint64_t
RankCounters::totalSlotFullStalls() const
{
    return sumSlots(*this, &RankCounters::slotFullStalls);
}

std::uint64_t
RankCounters::totalMailboxSends() const
{
    return sumSlots(*this, &RankCounters::mailboxSends);
}

std::uint64_t
RankCounters::totalMailboxRecvs() const
{
    return sumSlots(*this, &RankCounters::mailboxRecvs);
}

std::uint64_t
RankCounters::totalLLSpins() const
{
    return sumSlots(*this, &RankCounters::llSpins);
}

std::uint64_t
RankCounters::totalLLSpinNs() const
{
    return sumSlots(*this, &RankCounters::llSpinNs);
}

std::uint64_t
RankCounters::totalSmParks() const
{
    return sumSlots(*this, &RankCounters::smParks);
}

std::uint64_t
RankCounters::totalSmResumes() const
{
    return sumSlots(*this, &RankCounters::smResumes);
}

std::uint64_t
RankCounters::totalSmSteals() const
{
    return sumSlots(*this, &RankCounters::smSteals);
}

void
RankCounters::exportTo(MetricRegistry& registry) const
{
    struct Field {
        const char* name;
        std::uint64_t (RankCounters::*read)(int) const;
    };
    static constexpr Field kFields[] = {
        {"cas_retries", &RankCounters::casRetries},
        {"post_stalls", &RankCounters::postStalls},
        {"wait_stalls", &RankCounters::waitStalls},
        {"post_stall_ns", &RankCounters::postStallNs},
        {"wait_stall_ns", &RankCounters::waitStallNs},
        {"slot_full_stalls", &RankCounters::slotFullStalls},
        {"mailbox_sends", &RankCounters::mailboxSends},
        {"mailbox_recvs", &RankCounters::mailboxRecvs},
        {"executor_tasks", &RankCounters::executorTasks},
        {"executor_parks", &RankCounters::executorParks},
        {"executor_unparks", &RankCounters::executorUnparks},
        {"executor_queue_peak", &RankCounters::executorQueuePeak},
        {"sm_parks", &RankCounters::smParks},
        {"sm_resumes", &RankCounters::smResumes},
        {"sm_steals", &RankCounters::smSteals},
        {"ll_spins", &RankCounters::llSpins},
        {"ll_spin_ns", &RankCounters::llSpinNs},
    };
    for (const Field& field : kFields) {
        std::uint64_t total = 0;
        for (int rank = -1; rank < kMaxRanks; ++rank) {
            const std::uint64_t value = (this->*field.read)(rank);
            total += value;
            if (value == 0)
                continue;
            const std::string label =
                rank >= 0 ? "rank" + std::to_string(rank) : "unknown";
            registry.addCounter(
                "ccl." + label + "." + field.name,
                static_cast<double>(value));
        }
        registry.addCounter("ccl.total." + std::string(field.name),
                            static_cast<double>(total));
    }
}

void
RankCounters::reset()
{
    for (Slot& s : slots_) {
        s.cas_retries.store(0, std::memory_order_relaxed);
        s.post_stalls.store(0, std::memory_order_relaxed);
        s.wait_stalls.store(0, std::memory_order_relaxed);
        s.post_stall_ns.store(0, std::memory_order_relaxed);
        s.wait_stall_ns.store(0, std::memory_order_relaxed);
        s.slot_full_stalls.store(0, std::memory_order_relaxed);
        s.mailbox_sends.store(0, std::memory_order_relaxed);
        s.mailbox_recvs.store(0, std::memory_order_relaxed);
        s.executor_tasks.store(0, std::memory_order_relaxed);
        s.executor_parks.store(0, std::memory_order_relaxed);
        s.executor_unparks.store(0, std::memory_order_relaxed);
        s.executor_queue_peak.store(0, std::memory_order_relaxed);
        s.ll_spins.store(0, std::memory_order_relaxed);
        s.ll_spin_ns.store(0, std::memory_order_relaxed);
        s.sm_parks.store(0, std::memory_order_relaxed);
        s.sm_resumes.store(0, std::memory_order_relaxed);
        s.sm_steals.store(0, std::memory_order_relaxed);
    }
}

} // namespace obs
} // namespace ccube
