/**
 * @file
 * Reproduces Fig. 15: per-GPU normalized performance with C-Cube;
 * GPUs 0 and 1 host the detour forwarding kernels (§IV-A) and pay a
 * small SM tax.
 *
 * Paper shape: detour GPUs lose only ~3-4% vs the others — the detour
 * route is bandwidth- not latency-critical, so forwarding is cheap.
 */

#include <iostream>

#include "core/ccube_engine.h"
#include "obs/session.h"
#include "sweep/sweep.h"
#include "topo/detour_router.h"
#include "util/flags.h"
#include "util/table.h"

int
main(int argc, char** argv)
{
    const ccube::util::Flags flags(argc, argv);
    ccube::obs::ObsSession obs_session(flags);
    using namespace ccube;

    std::cout << "=== Fig. 15: per-GPU normalized performance "
                 "(ResNet-50, batch 64, high bandwidth, CC) ===\n\n";

    core::CCubeEngine engine(dnn::buildResnet50());
    core::IterationConfig config;
    config.batch = 64;
    config.bandwidth_scale = 1.0;

    // The per-GPU taxed evaluations are independent; fan them over
    // the sweep pool (identical output for every --jobs value).
    const auto perf = engine.perGpuNormalizedPerf(
        core::Mode::kCCube, config, sweep::Options::fromFlags(flags));
    const auto rules =
        topo::extractForwardingRules(engine.doubleTree());

    util::Table table(
        {"gpu", "forwarding_kernels", "normalized_perf", "loss_%"});
    for (int g = 0; g < 8; ++g) {
        int kernels = 0;
        for (const auto& rule : rules)
            if (rule.transit == g)
                ++kernels;
        table.addRow(
            {"GPU" + std::to_string(g), std::to_string(kernels),
             util::formatDouble(perf[static_cast<std::size_t>(g)], 4),
             util::formatDouble(
                 (1.0 - perf[static_cast<std::size_t>(g)]) * 100, 2)});
    }
    table.print(std::cout);
    std::cout << "\nPaper reference: detour nodes (GPU0, GPU1) lose "
                 "only 3-4% vs non-detour nodes; performance is "
                 "bandwidth- not latency-dominated.\n";
    return 0;
}
