#ifndef CCUBE_SIMNET_RING_SCHEDULE_H_
#define CCUBE_SIMNET_RING_SCHEDULE_H_

/**
 * @file
 * Timed ring AllReduce schedule (the paper's R baseline).
 *
 * 2(P−1) steps of neighbor exchange with N/P-byte chunks; each rank
 * advances to step s+1 once its step-s send has drained and its step-s
 * chunk has arrived. Matches Eq. (2) on uniform links while capturing
 * skew on non-uniform routes (e.g. switch fabrics).
 */

#include <functional>
#include <vector>

#include "simnet/collective_schedule.h"
#include "simnet/transfer_engine.h"
#include "topo/ring_embedding.h"

namespace ccube {
namespace simnet {

/**
 * One timed ring AllReduce.
 */
class RingSchedule
{
  public:
    /** Picks the channel lane for a (src, dst) hop. */
    using LaneFn = std::function<int(topo::NodeId, topo::NodeId)>;

    RingSchedule(Network& network, const topo::RingEmbedding& ring,
                 double total_bytes, LaneFn lane_fn = nullptr);

    /** Selects the wire protocol the transfers model (LL inflates
     *  bytes, discounts per-transfer latency); call before start(). */
    void setProtocol(ccl::Protocol proto)
    {
        engine_.setProtocol(proto);
    }

    /** Registers the step-0 sends at simulated time @p at. */
    void start(double at = 0.0);

    /** True once every rank completed all 2(P−1) steps. */
    bool finished() const { return ranks_done_ == ring_.size(); }

    /** Result; chunk k is the slice owned by ring position k. */
    ScheduleResult result() const;

  private:
    void startStep(int pos, int step);
    void onSendDrained(int pos, int step);
    void onChunkArrived(int pos, int step);
    void maybeAdvance(int pos);
    void recordAvailable(int pos, int chunk);

    Network& net_;
    TransferEngine engine_;
    const topo::RingEmbedding& ring_;
    LaneFn lane_fn_;
    const double chunk_bytes_;
    const int total_steps_;

    std::vector<int> send_done_;  ///< per position: last drained step
    std::vector<int> recv_done_;  ///< per position: last arrived step
    std::vector<int> current_;    ///< per position: step in flight
    int ranks_done_ = 0;

    std::vector<std::vector<double>> available_at_; ///< [rank][chunk]
    double completion_time_ = 0.0;
};

/** Convenience: run one ring schedule to completion. */
ScheduleResult runRingSchedule(sim::Simulation& simulation,
                               Network& network,
                               const topo::RingEmbedding& ring,
                               double total_bytes,
                               ccl::Protocol proto =
                                   ccl::Protocol::kSimple);

} // namespace simnet
} // namespace ccube

#endif // CCUBE_SIMNET_RING_SCHEDULE_H_
