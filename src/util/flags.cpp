#include "util/flags.h"

#include <cstdlib>

#include "util/logging.h"

namespace ccube {
namespace util {

Flags::Flags(int argc, const char* const* argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(arg);
            continue;
        }
        Entry entry;
        const std::string body = arg.substr(2);
        const std::size_t eq = body.find('=');
        if (eq != std::string::npos) {
            entry.name = body.substr(0, eq);
            entry.value = body.substr(eq + 1);
            entry.has_value = true;
        } else {
            entry.name = body;
            // `--name value` form: consume the next token unless it
            // is itself a flag.
            if (i + 1 < argc &&
                std::string(argv[i + 1]).rfind("--", 0) != 0) {
                entry.value = argv[++i];
                entry.has_value = true;
            }
        }
        CCUBE_CHECK(!entry.name.empty(), "empty flag name in " << arg);
        entries_.push_back(std::move(entry));
    }
}

const Flags::Entry*
Flags::find(const std::string& name) const
{
    for (const Entry& entry : entries_)
        if (entry.name == name)
            return &entry;
    return nullptr;
}

bool
Flags::has(const std::string& name) const
{
    return find(name) != nullptr;
}

std::string
Flags::get(const std::string& name, const std::string& fallback) const
{
    const Entry* entry = find(name);
    return entry && entry->has_value ? entry->value : fallback;
}

int
Flags::getInt(const std::string& name, int fallback) const
{
    const Entry* entry = find(name);
    if (!entry || !entry->has_value)
        return fallback;
    char* end = nullptr;
    const long value = std::strtol(entry->value.c_str(), &end, 10);
    CCUBE_CHECK(end && *end == '\0',
                "--" << name << " wants an integer, got '"
                     << entry->value << "'");
    return static_cast<int>(value);
}

double
Flags::getDouble(const std::string& name, double fallback) const
{
    const Entry* entry = find(name);
    if (!entry || !entry->has_value)
        return fallback;
    char* end = nullptr;
    const double value = std::strtod(entry->value.c_str(), &end);
    CCUBE_CHECK(end && *end == '\0',
                "--" << name << " wants a number, got '"
                     << entry->value << "'");
    return value;
}

std::vector<std::string>
Flags::names() const
{
    std::vector<std::string> result;
    for (const Entry& entry : entries_)
        result.push_back(entry.name);
    return result;
}

} // namespace util
} // namespace ccube
