# Empty dependencies file for embedding_search_test.
# This may be replaced when dependencies are built.
