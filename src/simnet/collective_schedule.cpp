#include "simnet/collective_schedule.h"

#include <algorithm>

#include "util/logging.h"

namespace ccube {
namespace simnet {

double
ScheduleResult::turnaroundTime() const
{
    CCUBE_CHECK(!chunk_ready.empty(), "empty schedule result");
    return *std::min_element(chunk_ready.begin(), chunk_ready.end());
}

double
ScheduleResult::effectiveBandwidth(double bytes) const
{
    CCUBE_CHECK(completion_time > 0.0, "schedule has not run");
    return bytes / completion_time;
}

void
ScheduleResult::merge(const ScheduleResult& other)
{
    CCUBE_CHECK(chunk_at_rank.size() == other.chunk_at_rank.size(),
                "merging results with different rank counts");
    num_chunks += other.num_chunks;
    completion_time = std::max(completion_time, other.completion_time);
    for (std::size_t r = 0; r < chunk_at_rank.size(); ++r) {
        chunk_at_rank[r].insert(chunk_at_rank[r].end(),
                                other.chunk_at_rank[r].begin(),
                                other.chunk_at_rank[r].end());
    }
    chunk_ready.insert(chunk_ready.end(), other.chunk_ready.begin(),
                       other.chunk_ready.end());
}

} // namespace simnet
} // namespace ccube
