/**
 * @file
 * core::ResilienceSupervisor end-to-end: retry/backoff on transient
 * faults, ladder descent on persistent channel failures, re-admission
 * after probation climbing back to the C-Cube embedding, checkpoint
 * restore semantics, and the `supervisor.rung` trace instants — over
 * all three engine modes.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <string>
#include <vector>

#include "ccl/checkpoint.h"
#include "ccl/communicator.h"
#include "ccl/fault.h"
#include "core/supervisor.h"
#include "obs/monitor.h"
#include "obs/trace.h"
#include "topo/dgx1.h"
#include "topo/graph.h"

namespace ccube {
namespace core {
namespace {

using namespace std::chrono_literals;

constexpr int kRanks = 8;
constexpr std::size_t kElems = 64;
constexpr float kExpected = 36.0f; // 1+2+...+8

ccl::RankBuffers
makeBuffers()
{
    ccl::RankBuffers buffers(kRanks);
    for (std::size_t r = 0; r < buffers.size(); ++r)
        buffers[r].assign(kElems, static_cast<float>(r + 1));
    return buffers;
}

void
expectReduced(const ccl::RankBuffers& buffers)
{
    for (std::size_t r = 0; r < buffers.size(); ++r)
        for (float v : buffers[r])
            ASSERT_FLOAT_EQ(v, kExpected) << "rank " << r;
}

/** Small deterministic re-plan budget (mirrors topo_recovery_test). */
RecoveryOptions
testRecovery(const topo::Graph& graph)
{
    RecoveryOptions options;
    options.search.num_ranks = graph.nodeCount();
    options.search.max_attempts = 500;
    options.search.seed = 7;
    return options;
}

/**
 * DGX-1 NVLink fabric plus a PCIe peer ring 0-1-...-7-0. The stock
 * DGX-1 graph is NVLink-only, so losing every NVLink on one node
 * disconnects it outright and the ladder bottoms out at kNone — the
 * ring rung is unreachable. The PCIe ring models the host-mediated
 * fallback path real boxes keep: tree embeddings route NVLink-only,
 * so NVLink-isolating a node skips both tree rungs while a
 * Hamiltonian ring over the PCIe channels stays routable.
 */
topo::Graph
makeTestbed()
{
    topo::Graph graph = topo::makeDgx1();
    const topo::Dgx1Params params;
    for (int g = 0; g < kRanks; ++g)
        graph.addLink(g, (g + 1) % kRanks, params.pcie_bandwidth,
                      params.pcie_latency, topo::LinkKind::kPcie);
    return graph;
}

/**
 * A fail set that forces the ladder all the way down to kRing: the
 * whole NVLink fabric (an NVSwitch/fabric-manager outage). Partial
 * NVLink kills are NOT enough — the conflict-free search routes
 * around them over the victim's PCIe links and stays on kCCube — but
 * with zero NVLink channels no double tree is routable at all, while
 * the PCIe peer ring still carries a Hamiltonian cycle. Verified at
 * test time so the test tracks the ladder, not hard-coded behavior.
 */
std::vector<int>
ringForcingSet(const topo::Graph& graph)
{
    std::vector<int> failed;
    for (int id = 0; id < graph.channelCount(); ++id)
        if (graph.channel(id).kind == topo::LinkKind::kNvlink)
            failed.push_back(id);
    if (recoverSchedule(graph, failed, testRecovery(graph)).kind !=
        RecoveryKind::kRing)
        return {};
    return failed;
}

class SupervisedCollective
    : public ::testing::TestWithParam<ccl::RankExecutor::Mode>
{
  protected:
    SupervisorOptions baseOptions(const topo::Graph& graph) const
    {
        SupervisorOptions options;
        options.recovery = testRecovery(graph);
        options.backoff_base_s = 0.001;
        options.backoff_max_s = 0.01;
        options.health.probation_runs = 2;
        return options;
    }
};

TEST_P(SupervisedCollective, HealthyRunCompletesOnCCube)
{
    const topo::Graph graph = topo::makeDgx1();
    ccl::Communicator comm(kRanks, 4, GetParam());
    comm.setDeadline(10s);
    ResilienceSupervisor supervisor(comm, graph, baseOptions(graph));

    EXPECT_EQ(supervisor.rung(), RecoveryKind::kCCube);
    ccl::RankBuffers buffers = makeBuffers();
    const SupervisorReport report = supervisor.allReduce(buffers);
    EXPECT_TRUE(report.completed);
    EXPECT_EQ(report.attempts, 1);
    EXPECT_EQ(report.replans, 0);
    EXPECT_EQ(report.rung, RecoveryKind::kCCube);
    EXPECT_DOUBLE_EQ(report.mttr_s, 0.0);
    EXPECT_TRUE(report.error.empty());
    expectReduced(buffers);
    EXPECT_EQ(supervisor.stats().completions, 1u);
}

TEST_P(SupervisedCollective, TransientKillRetriesOnSameTopology)
{
    const topo::Graph graph = topo::makeDgx1();
    ccl::Communicator comm(kRanks, 4, GetParam());
    comm.setDeadline(1s); // kill detection latency = this deadline
    ccl::FaultInjector injector;
    ccl::FaultInjector::Fault fault;
    fault.rank = 3;
    fault.action = ccl::FaultInjector::Action::kKill;
    fault.at_op = 2;
    injector.arm(fault); // fires exactly once: retry must succeed
    comm.setFaultInjector(&injector);

    ResilienceSupervisor supervisor(comm, graph, baseOptions(graph));

    obs::Monitor& monitor = obs::Monitor::global();
    monitor.clear();
    monitor.enable();

    ccl::RankBuffers buffers = makeBuffers();
    const SupervisorReport report = supervisor.allReduce(buffers);
    monitor.disable();

    EXPECT_TRUE(report.completed);
    EXPECT_EQ(report.attempts, 2);
    // No channel events: the abort classifies transient — same rung,
    // no re-plan.
    EXPECT_EQ(report.replans, 0);
    EXPECT_EQ(report.rung, RecoveryKind::kCCube);
    EXPECT_GT(report.mttr_s, 0.0);
    EXPECT_FALSE(report.error.empty());
    expectReduced(buffers);
    EXPECT_EQ(supervisor.stats().retries, 1u);
    EXPECT_GE(report.chunks_resumed, 0);

    // The recovery reached the monitor: one recovery, one retry,
    // MTTR histogram non-empty.
    EXPECT_EQ(monitor.recoveriesTotal(), 1u);
    EXPECT_EQ(monitor.recoveryRetriesTotal(), 1u);
    EXPECT_GT(monitor.recoveryMttr().count(), 0u);
    monitor.clear();
}

TEST_P(SupervisedCollective, PersistentFailureDescendsToRingMidCall)
{
    const topo::Graph graph = makeTestbed();
    const std::vector<int> dead = ringForcingSet(graph);
    ASSERT_FALSE(dead.empty()) << "no ring-forcing fail set on DGX-1";

    ccl::Communicator comm(kRanks, 4, GetParam());
    comm.setDeadline(1s);
    ccl::FaultInjector injector;
    ccl::FaultInjector::Fault fault;
    fault.rank = 2;
    fault.action = ccl::FaultInjector::Action::kKill;
    fault.at_op = 1;
    injector.arm(fault);
    comm.setFaultInjector(&injector);

    ResilienceSupervisor supervisor(comm, graph, baseOptions(graph));

    // The fabric manager reports the dead channels while the abort is
    // being cleared — i.e. after the attempt failed, before the
    // supervisor classifies it. The hook runs inside clearAbort(), so
    // the events land exactly in that window and the supervisor must
    // take the persistent path: re-plan to kRing, then retry.
    std::atomic<bool> fed{false};
    comm.setClearAbortHook([&]() {
        if (fed.exchange(true))
            return;
        for (int id : dead)
            supervisor.noteChannelFail(id);
    });

    ccl::RankBuffers buffers = makeBuffers();
    const SupervisorReport report = supervisor.allReduce(buffers);
    comm.setClearAbortHook({});

    EXPECT_TRUE(report.completed);
    EXPECT_EQ(report.attempts, 2);
    EXPECT_GE(report.replans, 1);
    EXPECT_EQ(report.rung, RecoveryKind::kRing);
    expectReduced(buffers);
    EXPECT_GE(supervisor.stats().demotions, 1u);
}

TEST_P(SupervisedCollective, ReAdmissionClimbsBackToCCube)
{
    const topo::Graph graph = makeTestbed();
    const std::vector<int> dead = ringForcingSet(graph);
    ASSERT_FALSE(dead.empty()) << "no ring-forcing fail set on DGX-1";

    ccl::Communicator comm(kRanks, 4, GetParam());
    comm.setDeadline(10s);
    ResilienceSupervisor supervisor(comm, graph, baseOptions(graph));

    obs::TraceRecorder& recorder = obs::TraceRecorder::global();
    recorder.clear();
    recorder.enable();

    // Healthy: C-Cube.
    ccl::RankBuffers healthy = makeBuffers();
    EXPECT_TRUE(supervisor.allReduce(healthy).completed);
    expectReduced(healthy);
    EXPECT_EQ(supervisor.rung(), RecoveryKind::kCCube);

    // Links die: descend to the ring fallback.
    for (int id : dead)
        supervisor.noteChannelFail(id);
    EXPECT_TRUE(supervisor.replanNow());
    EXPECT_EQ(supervisor.rung(), RecoveryKind::kRing);

    ccl::RankBuffers on_ring = makeBuffers();
    const SupervisorReport ring_report = supervisor.allReduce(on_ring);
    EXPECT_TRUE(ring_report.completed);
    EXPECT_EQ(ring_report.rung, RecoveryKind::kRing);
    expectReduced(on_ring); // byte-identical result on the fallback

    // Links restore: probation first — the rung must NOT climb until
    // probation_runs successful collectives have passed.
    for (int id : dead)
        supervisor.noteChannelRestore(id);
    for (int run = 0;
         run < supervisor.health().options().probation_runs; ++run) {
        ccl::RankBuffers probation = makeBuffers();
        const SupervisorReport report =
            supervisor.allReduce(probation);
        EXPECT_TRUE(report.completed);
        EXPECT_EQ(report.rung, RecoveryKind::kRing)
            << "climbed during probation (run " << run << ")";
        expectReduced(probation);
    }

    // Probation served: the next collective re-plans and runs on the
    // re-promoted C-Cube embedding with byte-identical results.
    ccl::RankBuffers promoted = makeBuffers();
    const SupervisorReport final_report =
        supervisor.allReduce(promoted);
    EXPECT_TRUE(final_report.completed);
    EXPECT_GE(final_report.replans, 1);
    EXPECT_EQ(final_report.rung, RecoveryKind::kCCube);
    expectReduced(promoted);
    EXPECT_GE(supervisor.stats().promotions, 1u);
    EXPECT_GE(supervisor.stats().demotions, 1u);

    // Every attempt traced its ladder position: instants exist for
    // both the ring phase and the re-promoted C-Cube phase.
    recorder.disable();
    bool saw_ring = false;
    bool saw_ccube = false;
    for (const obs::TraceEvent& event : recorder.snapshot()) {
        if (event.name != "supervisor.rung")
            continue;
        for (const auto& arg : event.args) {
            if (arg.first != "rung")
                continue;
            if (arg.second ==
                static_cast<double>(RecoveryKind::kRing))
                saw_ring = true;
            if (arg.second ==
                static_cast<double>(RecoveryKind::kCCube))
                saw_ccube = true;
        }
    }
    recorder.clear();
    EXPECT_TRUE(saw_ring);
    EXPECT_TRUE(saw_ccube);
}

TEST_P(SupervisedCollective, ExhaustedBudgetRestoresOriginalInputs)
{
    const topo::Graph graph = topo::makeDgx1();
    ccl::Communicator comm(kRanks, 4, GetParam());
    comm.setDeadline(500ms);
    ccl::FaultInjector injector;
    ccl::FaultInjector::Fault first;
    first.rank = 4;
    first.action = ccl::FaultInjector::Action::kKill;
    first.at_op = 0;
    injector.arm(first);
    comm.setFaultInjector(&injector);

    SupervisorOptions options = baseOptions(graph);
    options.max_retries = 1;
    ResilienceSupervisor supervisor(comm, graph, options);

    // Helper threads serving the victim rank tick its injector op
    // counter too, so a second pre-armed op index could still fire
    // inside attempt 1. Arm the retry's kill from the clearAbort
    // window instead: at that point the engine is quiescent and
    // opsSeen() is exactly the next op the revived rank will issue,
    // so this kill lands in attempt 2 — exhausting the budget.
    std::atomic<bool> rearmed{false};
    comm.setClearAbortHook([&]() {
        if (rearmed.exchange(true))
            return;
        ccl::FaultInjector::Fault again;
        again.rank = 4;
        again.action = ccl::FaultInjector::Action::kKill;
        again.at_op = injector.opsSeen(4);
        injector.arm(again);
    });

    ccl::RankBuffers buffers = makeBuffers();
    const SupervisorReport report = supervisor.allReduce(buffers);
    comm.setClearAbortHook({});
    EXPECT_FALSE(report.completed);
    EXPECT_EQ(report.attempts, 2);
    EXPECT_FALSE(report.error.empty());
    EXPECT_EQ(supervisor.stats().failures, 1u);

    // Contract: no partial sums leak — the caller sees its exact
    // original inputs back.
    for (std::size_t r = 0; r < buffers.size(); ++r)
        for (float v : buffers[r])
            ASSERT_FLOAT_EQ(v, static_cast<float>(r + 1));

    // The supervisor stays usable once the fault plan is spent.
    comm.setFaultInjector(nullptr);
    comm.setDeadline(10s);
    ccl::RankBuffers retry = makeBuffers();
    EXPECT_TRUE(supervisor.allReduce(retry).completed);
    expectReduced(retry);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, SupervisedCollective,
    ::testing::Values(ccl::RankExecutor::Mode::kPersistent,
                      ccl::RankExecutor::Mode::kSpawnPerCall,
                      ccl::RankExecutor::Mode::kStateMachine),
    [](const ::testing::TestParamInfo<ccl::RankExecutor::Mode>&
           info) {
        switch (info.param) {
          case ccl::RankExecutor::Mode::kPersistent:
            return "persistent";
          case ccl::RankExecutor::Mode::kSpawnPerCall:
            return "spawn";
          case ccl::RankExecutor::Mode::kStateMachine:
            return "statemachine";
        }
        return "unknown";
    });

// ----------------------------------------------- checkpoint details

TEST(ChunkCheckpoint, CommittedChunksSkipAndIncompleteOnesRestore)
{
    ccl::RankBuffers buffers(2);
    buffers[0].assign(8, 1.0f);
    buffers[1].assign(8, 2.0f);

    ccl::ChunkCheckpoint checkpoint;
    checkpoint.begin(buffers, ccl::ChunkLayout::ring(8, 2));
    ASSERT_TRUE(checkpoint.active());

    // Chunk 0 becomes final at every rank; chunk 1 only partially.
    ccl::AllReduceTrace::Observer observer = checkpoint.observer();
    observer(0, 0);
    observer(1, 0);
    observer(0, 1);
    EXPECT_TRUE(checkpoint.done(0));
    EXPECT_FALSE(checkpoint.done(1));
    EXPECT_FALSE(checkpoint.complete());
    EXPECT_EQ(checkpoint.mask().doneCount(), 1);

    // Scribble both chunks, as an aborted run would.
    for (auto& buffer : buffers)
        for (float& v : buffer)
            v = -99.0f;

    // restoreIncomplete rewrites only the un-committed chunk 1 range
    // (elements 4..8); committed chunk 0 keeps its reduced values.
    checkpoint.rearm();
    checkpoint.restoreIncomplete(buffers);
    for (std::size_t r = 0; r < buffers.size(); ++r) {
        for (std::size_t i = 0; i < 4; ++i)
            EXPECT_FLOAT_EQ(buffers[r][i], -99.0f);
        for (std::size_t i = 4; i < 8; ++i)
            EXPECT_FLOAT_EQ(buffers[r][i],
                            static_cast<float>(r + 1));
    }

    // restoreAll rewrites everything back to the begin() snapshot.
    checkpoint.restoreAll(buffers);
    for (std::size_t r = 0; r < buffers.size(); ++r)
        for (float v : buffers[r])
            EXPECT_FLOAT_EQ(v, static_cast<float>(r + 1));

    checkpoint.reset();
    EXPECT_FALSE(checkpoint.active());
}

TEST(ChunkCheckpoint, RearmVoidsPartialRecordsFromTheDeadAttempt)
{
    ccl::RankBuffers buffers(2);
    buffers[0].assign(4, 1.0f);
    buffers[1].assign(4, 2.0f);

    ccl::ChunkCheckpoint checkpoint;
    checkpoint.begin(buffers, ccl::ChunkLayout::ring(4, 2));
    ccl::AllReduceTrace::Observer observer = checkpoint.observer();

    // One rank recorded chunk 0, then the attempt died. rearm() must
    // void that partial record: the retry's observer starts fresh,
    // and chunk 0 only commits once BOTH ranks record it again.
    observer(0, 0);
    checkpoint.rearm();
    observer = checkpoint.observer();
    observer(0, 0);
    EXPECT_FALSE(checkpoint.done(0));
    observer(1, 0);
    EXPECT_TRUE(checkpoint.done(0));
}

TEST(SupervisorBackoff, DeterministicPerSeed)
{
    const topo::Graph graph = topo::makeDgx1();
    ccl::Communicator comm_a(kRanks, 4);
    ccl::Communicator comm_b(kRanks, 4);
    SupervisorOptions options;
    options.recovery.search.num_ranks = graph.nodeCount();
    options.recovery.search.max_attempts = 200;
    options.recovery.search.seed = 7;
    ResilienceSupervisor a(comm_a, graph, options);
    ResilienceSupervisor b(comm_b, graph, options);

    // Identical seeds produce identical supervisors: same initial
    // rung, same plan kind — the jitter stream is deterministic so
    // retry schedules replay exactly in simulation/debug.
    EXPECT_EQ(a.rung(), b.rung());
    EXPECT_EQ(a.plan().kind, b.plan().kind);
}

} // namespace
} // namespace core
} // namespace ccube
