#ifndef CCUBE_CCL_TREE_ALLREDUCE_H_
#define CCUBE_CCL_TREE_ALLREDUCE_H_

/**
 * @file
 * Functional tree AllReduce: baseline (two-phase) and overlapped (C1).
 *
 * Baseline (paper Fig. 5(a)): pipelined reduction up the tree, and
 * only after the full reduction completes does the pipelined broadcast
 * descend. Overlapped (Fig. 5(c), §III-C): a chunk starts its
 * broadcast the moment it is fully reduced at the root, using the
 * otherwise-idle downlinks (Observations #1 and #2).
 *
 * Detour edges of the embedding are serviced by forwarding threads on
 * the transit ranks — the analog of the paper's static forwarding
 * kernels (§IV-A).
 */

#include <span>

#include "ccl/allreduce.h"
#include "ccl/communicator.h"
#include "topo/tree_embedding.h"

namespace ccube {
namespace ccl {

/** Phase organisation of the tree algorithm. */
enum class TreePhaseMode {
    kTwoPhase,   ///< baseline: broadcast strictly after reduction
    kOverlapped, ///< C1: reduction-broadcast chaining
};

/** Flow ids used by one tree instance. */
struct TreeFlowIds {
    FlowId reduce = kFlowTree0Reduce;
    FlowId broadcast = kFlowTree0Broadcast;
};

/**
 * Runs tree AllReduce over @p buffers (one per rank, equal length,
 * indexed by rank id) split into @p num_chunks chunks. On return every
 * buffer holds the elementwise sum. @p resume skips chunks already
 * final at every rank — a supervised retry resuming from a
 * ccl::ChunkCheckpoint; ids match the trace's (chunk_id_offset 0).
 */
AllReduceTrace treeAllReduce(Communicator& comm, RankBuffers& buffers,
                             const topo::TreeEmbedding& embedding,
                             int num_chunks, TreePhaseMode mode,
                             TreeFlowIds flows = {},
                             AllReduceTrace::Observer observer = {},
                             Protocol proto = Protocol::kSimple,
                             const SkipMask& resume = {});

namespace detail {

/**
 * Per-rank body of the tree algorithm, for composition by the double
 * tree: runs rank @p rank's role over @p buffer (this rank's view of
 * the region this tree owns). Chunk ids recorded into @p trace are
 * offset by @p chunk_id_offset; @p resume is consulted at those
 * offset (global) ids.
 */
void treeRankBody(Communicator& comm, int rank, std::span<float> buffer,
                  const topo::TreeEmbedding& embedding,
                  const ChunkSplit& split, TreePhaseMode mode,
                  TreeFlowIds flows, AllReduceTrace& trace,
                  int chunk_id_offset,
                  Protocol proto = Protocol::kSimple,
                  const SkipMask& resume = {});

} // namespace detail

} // namespace ccl
} // namespace ccube

#endif // CCUBE_CCL_TREE_ALLREDUCE_H_
