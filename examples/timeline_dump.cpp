/**
 * @file
 * Timeline visualization: renders the steady-state training-iteration
 * timeline (backward → per-chunk AllReduce → chained forward) as an
 * ASCII Gantt chart for each mode, and dumps CSV for external
 * plotting — a Fig. 2(c)/Fig. 8 view of the simulated system.
 *
 * With `--trace-out=FILE` the run additionally captures a
 * Chrome/Perfetto trace covering all three layers: the analytic
 * iteration timeline (core.iteration), the DES channel occupancy
 * behind it (simnet.channel), and a real threaded ring AllReduce
 * (ccl.mailbox / ccl.allreduce). `--metrics-out=FILE` exports the
 * per-channel utilization and rank counters.
 *
 * Usage:
 *   timeline_dump [--workload zfnet|vgg16|resnet50|resnet101]
 *                 [--batch N] [--bw SCALE] [--csv]
 *                 [--trace-out=FILE] [--metrics-out=FILE]
 */

#include <iostream>
#include <vector>

#include "ccl/communicator.h"
#include "ccl/ring_allreduce.h"
#include "core/ccube_engine.h"
#include "core/timeline.h"
#include "obs/session.h"
#include "obs/trace.h"
#include "topo/ring_embedding.h"
#include "util/flags.h"
#include "util/rng.h"

namespace {

/**
 * Runs a small threaded ring AllReduce so a trace capture contains
 * real ccl-layer spans (mailbox post/wait, reduce-scatter/allgather)
 * alongside the analytic timeline.
 */
void
runFunctionalSample()
{
    using namespace ccube;
    constexpr int kRanks = 4;
    constexpr std::size_t kElems = 1024;

    ccl::RankBuffers buffers(kRanks);
    util::Rng rng(7);
    for (auto& buf : buffers) {
        buf.resize(kElems);
        rng.fill(buf, -1.0f, 1.0f);
    }
    const topo::RingEmbedding ring = topo::makeSequentialRing(kRanks);
    ccl::Communicator comm(kRanks);
    ccl::ringAllReduce(comm, buffers, ring);
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace ccube;

    const util::Flags flags(argc, argv);
    obs::ObsSession obs_session(flags);
    const bool csv = flags.has("csv");

    dnn::NetworkModel network = dnn::buildResnet50();
    const std::string workload = flags.get("workload", "resnet50");
    if (workload == "zfnet") {
        network = dnn::buildZfNet();
    } else if (workload == "vgg16") {
        network = dnn::buildVgg16();
    } else if (workload == "resnet101") {
        network = dnn::buildResnet101();
    } else if (workload != "resnet50") {
        std::cerr << "unknown --workload " << workload << "\n";
        return 1;
    }

    core::CCubeEngine engine(std::move(network));
    core::IterationConfig config;
    config.batch = flags.getInt("batch", 16);
    // Low bandwidth by default so the communication bar is visible.
    config.bandwidth_scale = flags.getDouble("bw", 0.25);

    int mode_index = 0;
    for (core::Mode mode :
         {core::Mode::kBaseline, core::Mode::kOverlappedTree,
          core::Mode::kCCube}) {
        if (obs_session.tracing()) {
            // One trace process per mode so Perfetto shows the three
            // iteration timelines side by side.
            core::TimelineBuilder::record(
                obs::TraceRecorder::global(), engine.scheduler(), mode,
                config, obs::pids::core() + mode_index);
        }
        ++mode_index;
        const auto events = core::TimelineBuilder::build(
            engine.scheduler(), mode, config);
        if (csv) {
            std::cout << "# mode " << core::modeName(mode) << "\n";
            core::TimelineBuilder::writeCsv(std::cout, events);
            continue;
        }
        std::cout << "\n=== " << core::modeName(mode) << " ("
                  << engine.network().name() << ", batch "
                  << config.batch << ", bandwidth x"
                  << config.bandwidth_scale << ") ===\n";
        core::TimelineBuilder::printAscii(std::cout, events);
    }
    if (!csv) {
        std::cout << "\nIn B, forward starts only after the whole "
                     "AllReduce; in CC the forward bar slides left "
                     "under the AllReduce bar — the chaining the "
                     "paper proposes.\n";
    }
    if (obs_session.tracing())
        runFunctionalSample();
    obs_session.finish();
    return 0;
}
