#include "dnn/catalog.h"

#include <string>

namespace ccube {
namespace dnn {

namespace {

/** Appends a conv layer and returns its output spatial size. */
int
addConv(std::vector<Layer>& layers, const std::string& name, int in_ch,
        int out_ch, int kernel, int stride, int padding, int in_size)
{
    const ConvShape shape{in_ch, out_ch, kernel, stride, padding,
                          in_size};
    layers.push_back(Layer::conv(name, shape));
    return shape.outSize();
}

int
addPool(std::vector<Layer>& layers, const std::string& name,
        int channels, int kernel, int stride, int in_size)
{
    const PoolShape shape{channels, kernel, stride, in_size};
    layers.push_back(Layer::pool(name, shape));
    return shape.outSize();
}

void
addFc(std::vector<Layer>& layers, const std::string& name, int in,
      int out)
{
    layers.push_back(Layer::fc(name, FcShape{in, out}));
}

/**
 * Appends one ResNet bottleneck (1x1 reduce, 3x3, 1x1 expand, plus a
 * 1x1 projection when the block changes shape). Returns the output
 * spatial size.
 */
int
addBottleneck(std::vector<Layer>& layers, const std::string& prefix,
              int in_ch, int width, int stride, int in_size)
{
    const int out_ch = 4 * width;
    int size = in_size;
    size = addConv(layers, prefix + ".conv1", in_ch, width, 1, 1, 0,
                   size);
    size = addConv(layers, prefix + ".conv2", width, width, 3, stride, 1,
                   size);
    size = addConv(layers, prefix + ".conv3", width, out_ch, 1, 1, 0,
                   size);
    if (stride != 1 || in_ch != out_ch) {
        addConv(layers, prefix + ".downsample", in_ch, out_ch, 1, stride,
                0, in_size);
    }
    return size;
}

} // namespace

NetworkModel
buildZfNet()
{
    std::vector<Layer> layers;
    int size = 224;
    size = addConv(layers, "conv1", 3, 96, 7, 2, 1, size);
    size = addPool(layers, "pool1", 96, 3, 2, size);
    size = addConv(layers, "conv2", 96, 256, 5, 2, 0, size);
    size = addPool(layers, "pool2", 256, 3, 2, size);
    size = addConv(layers, "conv3", 256, 384, 3, 1, 1, size);
    size = addConv(layers, "conv4", 384, 384, 3, 1, 1, size);
    size = addConv(layers, "conv5", 384, 256, 3, 1, 1, size);
    size = addPool(layers, "pool5", 256, 3, 2, size);
    addFc(layers, "fc6", size * size * 256, 4096);
    addFc(layers, "fc7", 4096, 4096);
    addFc(layers, "fc8", 4096, 1000);
    return NetworkModel("zfnet", std::move(layers));
}

NetworkModel
buildAlexNet()
{
    std::vector<Layer> layers;
    int size = 227;
    size = addConv(layers, "conv1", 3, 96, 11, 4, 0, size);
    size = addPool(layers, "pool1", 96, 3, 2, size);
    size = addConv(layers, "conv2", 96, 256, 5, 1, 2, size);
    size = addPool(layers, "pool2", 256, 3, 2, size);
    size = addConv(layers, "conv3", 256, 384, 3, 1, 1, size);
    size = addConv(layers, "conv4", 384, 384, 3, 1, 1, size);
    size = addConv(layers, "conv5", 384, 256, 3, 1, 1, size);
    size = addPool(layers, "pool5", 256, 3, 2, size);
    addFc(layers, "fc6", size * size * 256, 4096);
    addFc(layers, "fc7", 4096, 4096);
    addFc(layers, "fc8", 4096, 1000);
    return NetworkModel("alexnet", std::move(layers));
}

namespace {

NetworkModel
buildResnet(const std::string& name, const int (&blocks)[4])
{
    std::vector<Layer> layers;
    int size = 224;
    size = addConv(layers, "conv1", 3, 64, 7, 2, 3, size);
    size = addPool(layers, "pool1", 64, 3, 2, size);
    const int widths[4] = {64, 128, 256, 512};
    int in_ch = 64;
    for (int s = 0; s < 4; ++s) {
        for (int b = 0; b < blocks[s]; ++b) {
            const int stride = (s > 0 && b == 0) ? 2 : 1;
            const std::string prefix = "layer" + std::to_string(s + 1) +
                                       "." + std::to_string(b);
            size = addBottleneck(layers, prefix, in_ch, widths[s],
                                 stride, size);
            in_ch = 4 * widths[s];
        }
    }
    addPool(layers, "avgpool", in_ch, size, size, size);
    addFc(layers, "fc", in_ch, 1000);
    return NetworkModel(name, std::move(layers));
}

} // namespace

NetworkModel
buildResnet101()
{
    const int blocks[4] = {3, 4, 23, 3};
    return buildResnet("resnet101", blocks);
}

NetworkModel
buildVgg16()
{
    std::vector<Layer> layers;
    int size = 224;
    int in_ch = 3;
    const struct {
        int convs;
        int channels;
    } stages[] = {{2, 64}, {2, 128}, {3, 256}, {3, 512}, {3, 512}};
    int stage_id = 1;
    for (const auto& stage : stages) {
        for (int c = 0; c < stage.convs; ++c) {
            size = addConv(layers,
                           "conv" + std::to_string(stage_id) + "_" +
                               std::to_string(c + 1),
                           in_ch, stage.channels, 3, 1, 1, size);
            in_ch = stage.channels;
        }
        size = addPool(layers, "pool" + std::to_string(stage_id), in_ch,
                       2, 2, size);
        ++stage_id;
    }
    addFc(layers, "fc6", size * size * 512, 4096);
    addFc(layers, "fc7", 4096, 4096);
    addFc(layers, "fc8", 4096, 1000);
    return NetworkModel("vgg16", std::move(layers));
}

NetworkModel
buildResnet50()
{
    std::vector<Layer> layers;
    int size = 224;
    size = addConv(layers, "conv1", 3, 64, 7, 2, 3, size);
    size = addPool(layers, "pool1", 64, 3, 2, size);

    const struct {
        int blocks;
        int width;
    } stages[] = {{3, 64}, {4, 128}, {6, 256}, {3, 512}};
    int in_ch = 64;
    for (int s = 0; s < 4; ++s) {
        for (int b = 0; b < stages[s].blocks; ++b) {
            const int stride = (s > 0 && b == 0) ? 2 : 1;
            const std::string prefix = "layer" + std::to_string(s + 1) +
                                       "." + std::to_string(b);
            size = addBottleneck(layers, prefix, in_ch, stages[s].width,
                                 stride, size);
            in_ch = 4 * stages[s].width;
        }
    }
    addPool(layers, "avgpool", in_ch, size, size, size);
    addFc(layers, "fc", in_ch, 1000);
    return NetworkModel("resnet50", std::move(layers));
}

NetworkModel
buildSsdVgg16()
{
    // VGG-16 backbone (without the classifier FCs) plus SSD extra
    // feature layers and multibox heads.
    std::vector<Layer> layers;
    int size = 300;
    int in_ch = 3;
    const struct {
        int convs;
        int channels;
    } stages[] = {{2, 64}, {2, 128}, {3, 256}, {3, 512}, {3, 512}};
    int stage_id = 1;
    for (const auto& stage : stages) {
        for (int c = 0; c < stage.convs; ++c) {
            size = addConv(layers,
                           "backbone" + std::to_string(stage_id) + "_" +
                               std::to_string(c + 1),
                           in_ch, stage.channels, 3, 1, 1, size);
            in_ch = stage.channels;
        }
        if (stage_id < 5)
            size = addPool(layers, "pool" + std::to_string(stage_id),
                           in_ch, 2, 2, size);
        ++stage_id;
    }
    // fc6/fc7 converted to dilated convolutions (SSD style).
    size = addConv(layers, "conv6", 512, 1024, 3, 1, 1, size);
    size = addConv(layers, "conv7", 1024, 1024, 1, 1, 0, size);
    // Extra feature layers.
    size = addConv(layers, "conv8_1", 1024, 256, 1, 1, 0, size);
    size = addConv(layers, "conv8_2", 256, 512, 3, 2, 1, size);
    size = addConv(layers, "conv9_1", 512, 128, 1, 1, 0, size);
    size = addConv(layers, "conv9_2", 128, 256, 3, 2, 1, size);
    // Multibox classification + localization heads.
    addConv(layers, "head_cls", 512, 486, 3, 1, 1, 38);
    addConv(layers, "head_loc", 512, 24, 3, 1, 1, 38);
    return NetworkModel("ssd_vgg16", std::move(layers));
}

NetworkModel
buildMaskRcnnR50()
{
    // ResNet-50 backbone plus FPN lateral/output convs and the
    // box/mask heads.
    NetworkModel backbone = buildResnet50();
    std::vector<Layer> layers = backbone.layers();
    layers.pop_back(); // drop the ImageNet fc
    for (int level = 2; level <= 5; ++level) {
        const int in_ch = 64 * (1 << level);
        addConv(layers, "fpn_lateral" + std::to_string(level), in_ch,
                256, 1, 1, 0, 7 * (1 << (5 - level)));
        addConv(layers, "fpn_output" + std::to_string(level), 256, 256,
                3, 1, 1, 7 * (1 << (5 - level)));
    }
    addFc(layers, "box_head_fc1", 256 * 7 * 7, 1024);
    addFc(layers, "box_head_fc2", 1024, 1024);
    addFc(layers, "box_predictor", 1024, 81 * 5);
    for (int c = 0; c < 4; ++c)
        addConv(layers, "mask_head_conv" + std::to_string(c + 1), 256,
                256, 3, 1, 1, 14);
    addConv(layers, "mask_predictor", 256, 81, 1, 1, 0, 28);
    return NetworkModel("maskrcnn_r50", std::move(layers));
}

NetworkModel
buildNcf()
{
    // NeuMF: user/item embeddings (memory-bound) + a small MLP.
    std::vector<Layer> layers;
    layers.push_back(Layer::embedding(
        "user_embedding", EmbeddingShape{138000000 / 64, 64, 1}));
    layers.push_back(Layer::embedding(
        "item_embedding", EmbeddingShape{27000000 / 64, 64, 1}));
    addFc(layers, "mlp1", 128, 256);
    addFc(layers, "mlp2", 256, 128);
    addFc(layers, "mlp3", 128, 64);
    addFc(layers, "predict", 64, 1);
    return NetworkModel("ncf", std::move(layers));
}

NetworkModel
buildGnmt()
{
    // 8-layer LSTM encoder/decoder, hidden 1024, vocab 32k. An LSTM
    // layer's weights are 4·h·(2h); modeled as an equivalent FC.
    std::vector<Layer> layers;
    const int hidden = 1024;
    const int seq = 50; // average sentence length
    layers.push_back(
        Layer::embedding("src_embedding", EmbeddingShape{32000, hidden,
                                                         seq}));
    for (int l = 0; l < 8; ++l) {
        Layer lstm = Layer::fc("encoder_lstm" + std::to_string(l),
                               FcShape{2 * hidden, 4 * hidden});
        lstm.forward_flops_per_sample *= seq;
        layers.push_back(lstm);
    }
    layers.push_back(
        Layer::embedding("tgt_embedding", EmbeddingShape{32000, hidden,
                                                         seq}));
    for (int l = 0; l < 8; ++l) {
        Layer lstm = Layer::fc("decoder_lstm" + std::to_string(l),
                               FcShape{2 * hidden, 4 * hidden});
        lstm.forward_flops_per_sample *= seq;
        layers.push_back(lstm);
    }
    Layer proj = Layer::fc("vocab_projection", FcShape{hidden, 32000});
    proj.forward_flops_per_sample *= seq;
    layers.push_back(proj);
    return NetworkModel("gnmt", std::move(layers));
}

NetworkModel
buildTransformer()
{
    // Transformer base: 6+6 layers, d_model 512, ffn 2048, vocab 32k.
    std::vector<Layer> layers;
    const int d = 512;
    const int ffn = 2048;
    const int seq = 64;
    layers.push_back(
        Layer::embedding("embedding", EmbeddingShape{32000, d, seq}));
    for (int l = 0; l < 12; ++l) {
        const std::string p = "block" + std::to_string(l);
        Layer attn = Layer::fc(p + ".attention", FcShape{d, 4 * d});
        attn.kind = LayerKind::kAttention;
        attn.forward_flops_per_sample *= seq;
        layers.push_back(attn);
        Layer ffn1 = Layer::fc(p + ".ffn1", FcShape{d, ffn});
        ffn1.forward_flops_per_sample *= seq;
        layers.push_back(ffn1);
        Layer ffn2 = Layer::fc(p + ".ffn2", FcShape{ffn, d});
        ffn2.forward_flops_per_sample *= seq;
        layers.push_back(ffn2);
    }
    Layer proj = Layer::fc("vocab_projection", FcShape{d, 32000});
    proj.forward_flops_per_sample *= seq;
    layers.push_back(proj);
    return NetworkModel("transformer", std::move(layers));
}

std::vector<Workload>
mlperfSuite()
{
    std::vector<Workload> suite;
    auto add = [&suite](std::string label, NetworkModel model, int batch,
                        double allreduce_bytes = -1.0) {
        Workload w{std::move(label), std::move(model), batch, 0.0};
        w.allreduce_bytes = allreduce_bytes > 0.0
                                ? allreduce_bytes
                                : w.model.totalParamBytes();
        suite.push_back(std::move(w));
    };
    add("SingleStageDetector", buildSsdVgg16(), 16);
    add("MaskR-CNN", buildMaskRcnnR50(), 4);
    add("ResNet-50", buildResnet50(), 64);
    // GNMT / Transformer train their embedding tables with sparse
    // gradients (PyTorch sparse=True, as in the MLPerf reference);
    // only the dense parameters go through AllReduce.
    {
        NetworkModel gnmt = buildGnmt();
        double dense = gnmt.totalParamBytes();
        for (const Layer& layer : gnmt.layers())
            if (layer.kind == LayerKind::kEmbedding)
                dense -= layer.paramBytes();
        add("GNMT", std::move(gnmt), 64, dense);
    }
    {
        NetworkModel transformer = buildTransformer();
        double dense = transformer.totalParamBytes();
        for (const Layer& layer : transformer.layers())
            if (layer.kind == LayerKind::kEmbedding)
                dense -= layer.paramBytes();
        add("Transformer", std::move(transformer), 32, dense);
    }
    // NCF exchanges only the dense MLP gradients; the embedding
    // tables update sparsely outside AllReduce.
    add("NCF", buildNcf(), 1024, 4.0 * (128.0 * 256 + 256.0 * 128 +
                                        128.0 * 64 + 64.0) * 16);
    return suite;
}

} // namespace dnn
} // namespace ccube
