#ifndef CCUBE_CORE_ITERATION_SCHEDULER_H_
#define CCUBE_CORE_ITERATION_SCHEDULER_H_

/**
 * @file
 * Training-iteration scheduler: composes backward compute, one-shot
 * AllReduce, and (for the chained modes) gradient-queue-driven forward
 * computation into a steady-state iteration timeline (paper Fig. 2(c),
 * Fig. 8).
 *
 * Modes map to the paper's evaluation labels (§V-B):
 *   B  — baseline double tree, no overlap;
 *   C1 — overlapped (reduction-broadcast chained) double tree;
 *   C2 — gradient-queue compute chaining over the baseline tree;
 *   R  — ring AllReduce (NCCL-style), no chaining (out-of-order);
 *   CC — C-Cube: C1 + C2.
 */

#include <string>
#include <vector>

#include "dnn/compute_model.h"
#include "dnn/network.h"
#include "model/alpha_beta.h"
#include "simnet/collective_schedule.h"
#include "topo/double_tree.h"
#include "topo/graph.h"
#include "topo/ring_embedding.h"

namespace ccube {

namespace sweep {
struct Options;
}

namespace core {

/** Evaluation configurations of §V-B. */
enum class Mode {
    kBaseline,        ///< B: two-phase double tree
    kOverlappedTree,  ///< C1: overlapped double tree
    kComputeChaining, ///< C2: gradient queuing over baseline tree
    kRing,            ///< R: ring AllReduce
    kCCube,           ///< CC: C1 + C2
};

/** Paper's short label for a mode ("B", "C1", "C2", "R", "CC"). */
const char* modeName(Mode mode);

/** All five modes in the paper's presentation order. */
std::vector<Mode> allModes();

/** Per-run knobs. */
struct IterationConfig {
    int batch = 64;
    /** 1.0 = full NVLink ("high"); 0.25 = the paper's "low". */
    double bandwidth_scale = 1.0;
};

/** Steady-state timing of one training iteration. */
struct IterationResult {
    double forward_time = 0.0;    ///< unchained forward compute
    double backward_time = 0.0;   ///< backward compute
    double comm_time = 0.0;       ///< AllReduce completion
    double turnaround_time = 0.0; ///< first chunk ready (rel. to comm)
    double iteration_time = 0.0;  ///< steady-state period
    /** (fwd+bwd) / iteration — 1.0 means communication-free ideal. */
    double normalized_perf = 0.0;
    /** Communication not hidden behind compute. */
    double exposed_comm = 0.0;
    /** 1 − exposed/comm: fraction of AllReduce hidden by chaining. */
    double chain_efficiency = 0.0;
};

/**
 * Computes iteration timelines for one workload on one machine.
 */
class IterationScheduler
{
  public:
    IterationScheduler(const topo::Graph& graph,
                       topo::DoubleTreeEmbedding double_tree,
                       std::vector<topo::RingEmbedding> rings,
                       dnn::NetworkModel network,
                       dnn::GpuComputeParams gpu_params);

    /** Steady-state result for @p mode under @p config. */
    IterationResult run(Mode mode, const IterationConfig& config) const;

    /**
     * Communication-only schedule for @p mode moving @p bytes at
     * @p bandwidth_scale; chunk counts follow the tree model's K_opt.
     */
    simnet::ScheduleResult commSchedule(Mode mode, double bytes,
                                        double bandwidth_scale) const;

    /** K_opt per tree for a payload of @p bytes_per_tree. */
    int chunksPerTree(double bytes_per_tree) const;

    /** α-β parameters implied by the graph's first NVLink channel. */
    model::AlphaBeta linkModel() const;

    /** The workload this scheduler runs. */
    const dnn::NetworkModel& network() const { return network_; }

    /** The double-tree embedding in use. */
    const topo::DoubleTreeEmbedding& doubleTree() const
    {
        return double_tree_;
    }

    /** GPU compute parameters in use. */
    const dnn::GpuComputeParams& gpuParams() const
    {
        return gpu_params_;
    }

    /** The logical rings in use (NCCL-style multi-ring R). */
    const std::vector<topo::RingEmbedding>& rings() const
    {
        return rings_;
    }

    /**
     * Per-GPU normalized performance (Fig. 15): GPUs hosting detour
     * forwarding kernels pay @p tax_per_kernel of their compute
     * throughput per hosted kernel.
     */
    std::vector<double> perGpuNormalizedPerf(
        Mode mode, const IterationConfig& config,
        double tax_per_kernel) const;

    /**
     * Same, with the per-GPU evaluations fanned across the sweep
     * pool (each GPU's taxed run is independent). Identical output
     * for every job count.
     */
    std::vector<double> perGpuNormalizedPerf(
        Mode mode, const IterationConfig& config,
        double tax_per_kernel, const sweep::Options& pool) const;

  private:
    /**
     * Full evaluation with a compute slowdown factor (1.0 = nominal);
     * the slowdown models the SM tax of detour forwarding kernels.
     */
    IterationResult evaluate(Mode mode, const IterationConfig& config,
                             double compute_slowdown) const;

    const topo::Graph& graph_;
    topo::DoubleTreeEmbedding double_tree_;
    std::vector<topo::RingEmbedding> rings_;
    dnn::NetworkModel network_;
    dnn::GpuComputeParams gpu_params_;
};

} // namespace core
} // namespace ccube

#endif // CCUBE_CORE_ITERATION_SCHEDULER_H_
