# Empty dependencies file for fig05_step_counts.
# This may be replaced when dependencies are built.
