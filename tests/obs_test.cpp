/**
 * @file
 * Tests for the obs:: observability layer: trace recording and JSON
 * export, the disabled fast path, metric registry semantics, the
 * per-rank counters of a real functional AllReduce, and agreement
 * between Network::exportMetrics and the raw channel telemetry.
 */

#include <cctype>
#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ccl/communicator.h"
#include "ccl/ring_allreduce.h"
#include "obs/context.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/simulation.h"
#include "simnet/channel.h"
#include "simnet/double_tree_schedule.h"
#include "topo/dgx1.h"
#include "topo/double_tree.h"
#include "topo/ring_embedding.h"

namespace ccube {
namespace {

// --- Minimal JSON validity checker -----------------------------------
// Recursive-descent over the full grammar; enough to prove the trace
// and metrics writers emit well-formed JSON without external deps.

class JsonChecker
{
  public:
    explicit JsonChecker(std::string text) : text_(std::move(text)) {}

    bool valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos_ == text_.size();
    }

  private:
    bool value()
    {
        if (pos_ >= text_.size())
            return false;
        switch (text_[pos_]) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default: return number();
        }
    }

    bool object()
    {
        ++pos_; // '{'
        skipWs();
        if (peek() == '}') { ++pos_; return true; }
        while (true) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos_;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == '}') { ++pos_; return true; }
            return false;
        }
    }

    bool array()
    {
        ++pos_; // '['
        skipWs();
        if (peek() == ']') { ++pos_; return true; }
        while (true) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == ']') { ++pos_; return true; }
            return false;
        }
    }

    bool string()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '"') { ++pos_; return true; }
            if (c == '\\') {
                ++pos_;
                if (pos_ >= text_.size())
                    return false;
                const char e = text_[pos_];
                if (e == 'u') {
                    for (int i = 1; i <= 4; ++i) {
                        if (pos_ + static_cast<std::size_t>(i) >=
                                text_.size() ||
                            !std::isxdigit(static_cast<unsigned char>(
                                text_[pos_ +
                                      static_cast<std::size_t>(i)])))
                            return false;
                    }
                    pos_ += 4;
                } else if (std::string("\"\\/bfnrt").find(e) ==
                           std::string::npos) {
                    return false;
                }
            } else if (static_cast<unsigned char>(c) < 0x20) {
                return false; // raw control char must be escaped
            }
            ++pos_;
        }
        return false;
    }

    bool number()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (std::isdigit(static_cast<unsigned char>(peek())))
            ++pos_;
        if (peek() == '.') {
            ++pos_;
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-')
                ++pos_;
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        return pos_ > start;
    }

    bool literal(const char* word)
    {
        const std::string w(word);
        if (text_.compare(pos_, w.size(), w) != 0)
            return false;
        pos_ += w.size();
        return true;
    }

    char peek() const
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    void skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    std::string text_;
    std::size_t pos_ = 0;
};

// --- TraceRecorder ---------------------------------------------------

TEST(TraceRecorder, DisabledRecordsNothing)
{
    obs::TraceRecorder recorder;
    ASSERT_FALSE(recorder.enabled());

    recorder.completeEvent("span", "cat", 1, 0, 0.0, 5.0);
    recorder.instantEvent("mark", "cat", 1, 0, 1.0);
    {
        obs::ScopedSpan span(recorder, "scoped", "cat", 1, 0);
        span.arg("k", 1.0);
    }
    EXPECT_EQ(recorder.eventCount(), 0u);
    EXPECT_EQ(recorder.wallNowUs(), 0.0);
}

TEST(TraceRecorder, RecordsCompleteEventsWithArgs)
{
    obs::TraceRecorder recorder;
    recorder.enable();
    recorder.completeEvent("xfer", "simnet.channel", 100, 3, 10.0, 2.5,
                           {{"bytes", 4096.0}, {"queue_wait_us", 0.5}});

    const auto events = recorder.snapshot();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].name, "xfer");
    EXPECT_EQ(events[0].cat, "simnet.channel");
    EXPECT_EQ(events[0].phase, 'X');
    EXPECT_EQ(events[0].pid, 100);
    EXPECT_EQ(events[0].tid, 3);
    EXPECT_DOUBLE_EQ(events[0].ts_us, 10.0);
    EXPECT_DOUBLE_EQ(events[0].dur_us, 2.5);
    ASSERT_EQ(events[0].args.size(), 2u);
    EXPECT_EQ(events[0].args[0].first, "bytes");
    EXPECT_DOUBLE_EQ(events[0].args[0].second, 4096.0);
}

TEST(TraceRecorder, ScopedSpanMeasuresNonNegativeWallTime)
{
    obs::TraceRecorder recorder;
    recorder.enable();
    {
        obs::ScopedSpan span(recorder, "work", "test", 1, 2);
        span.arg("items", 7.0);
    }
    const auto events = recorder.snapshot();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_GE(events[0].ts_us, 0.0);
    EXPECT_GE(events[0].dur_us, 0.0);
    ASSERT_EQ(events[0].args.size(), 1u);
    EXPECT_EQ(events[0].args[0].first, "items");
}

TEST(TraceRecorder, SimEpochAdvancesPastEachRun)
{
    obs::TraceRecorder recorder;
    recorder.enable();
    EXPECT_DOUBLE_EQ(recorder.simOffsetUs(), 0.0);
    recorder.advanceSimEpoch(1000.0);
    const double first = recorder.simOffsetUs();
    EXPECT_GT(first, 1000.0);
    recorder.advanceSimEpoch(500.0);
    EXPECT_GT(recorder.simOffsetUs(), first + 500.0);
}

TEST(TraceRecorder, WriteJsonIsValidAndEscapes)
{
    obs::TraceRecorder recorder;
    recorder.enable();
    recorder.setProcessName(7, "proc \"seven\"");
    recorder.setThreadName(7, 1, "track\\one");
    recorder.completeEvent("na\"me\nwith\tescapes", "cat", 7, 1, 0.0,
                           1.0, {{"k", 2.0}});
    recorder.instantEvent("tick", "cat", 7, 1, 3.0);

    std::ostringstream out;
    recorder.writeJson(out);
    const std::string json = out.str();

    JsonChecker checker(json);
    EXPECT_TRUE(checker.valid()) << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("process_name"), std::string::npos);
    EXPECT_NE(json.find("thread_name"), std::string::npos);
}

TEST(TraceRecorder, ClearDropsEverything)
{
    obs::TraceRecorder recorder;
    recorder.enable();
    recorder.completeEvent("a", "c", 1, 0, 0.0, 1.0);
    recorder.advanceSimEpoch(10.0);
    recorder.clear();
    EXPECT_EQ(recorder.eventCount(), 0u);
    EXPECT_DOUBLE_EQ(recorder.simOffsetUs(), 0.0);
}

// --- MetricRegistry --------------------------------------------------

TEST(MetricRegistry, CountersGaugesHistograms)
{
    obs::MetricRegistry registry;
    registry.addCounter("hits", 2.0);
    registry.addCounter("hits", 3.0);
    registry.setGauge("level", 42.0);
    registry.observe("wait", 1.0);
    registry.observe("wait", 3.0);

    EXPECT_DOUBLE_EQ(registry.counter("hits"), 5.0);
    EXPECT_DOUBLE_EQ(registry.gauge("level"), 42.0);
    EXPECT_TRUE(registry.hasGauge("level"));
    EXPECT_FALSE(registry.hasGauge("missing"));
    EXPECT_EQ(registry.histogram("wait").count(), 2);
    EXPECT_DOUBLE_EQ(registry.histogram("wait").mean(), 2.0);

    util::RunningStats extra;
    extra.add(5.0);
    registry.mergeHistogram("wait", extra);
    EXPECT_EQ(registry.histogram("wait").count(), 3);
    EXPECT_DOUBLE_EQ(registry.histogram("wait").mean(), 3.0);
}

TEST(MetricRegistry, CsvAndJsonExport)
{
    obs::MetricRegistry registry;
    registry.addCounter("c", 1.0);
    registry.setGauge("g", 2.5);
    registry.observe("h", 4.0);

    std::ostringstream csv;
    registry.writeCsv(csv);
    const std::string csv_text = csv.str();
    EXPECT_EQ(csv_text.substr(0, csv_text.find('\n')),
              "name,kind,count,value,mean,min,max,stddev");
    EXPECT_NE(csv_text.find("c,counter"), std::string::npos);
    EXPECT_NE(csv_text.find("g,gauge"), std::string::npos);
    EXPECT_NE(csv_text.find("h,histogram"), std::string::npos);

    std::ostringstream json;
    registry.writeJson(json);
    JsonChecker checker(json.str());
    EXPECT_TRUE(checker.valid()) << json.str();
}

// --- Functional runtime counters + spans -----------------------------

TEST(RankCounters, TwoRankRingAllReduceMatchesHandCount)
{
    obs::RankCounters& counters = obs::RankCounters::global();
    obs::TraceRecorder& recorder = obs::TraceRecorder::global();
    counters.reset();
    recorder.clear();
    recorder.enable();

    constexpr int kRanks = 2;
    constexpr std::size_t kElems = 256;
    ccl::RankBuffers buffers(kRanks);
    for (int r = 0; r < kRanks; ++r)
        buffers[static_cast<std::size_t>(r)]
            .assign(kElems, static_cast<float>(r + 1));

    const topo::RingEmbedding ring = topo::makeSequentialRing(kRanks);
    ccl::Communicator comm(kRanks);
    ccl::ringAllReduce(comm, buffers, ring);

    recorder.disable();

    for (const auto& buf : buffers)
        for (float v : buf)
            ASSERT_FLOAT_EQ(v, 3.0f);

    // Classic two-phase ring with P = 2: each rank sends P−1 = 1 chunk
    // in Reduce-Scatter and one in AllGather — 2 sends and 2 receives
    // per rank, 4 of each in total.
    for (int r = 0; r < kRanks; ++r) {
        EXPECT_EQ(counters.mailboxSends(r), 2u) << "rank " << r;
        EXPECT_EQ(counters.mailboxRecvs(r), 2u) << "rank " << r;
    }
    EXPECT_EQ(counters.totalMailboxSends(), 4u);
    EXPECT_EQ(counters.totalMailboxRecvs(), 4u);
    // No helper threads ran, so nothing lands in the unknown slot.
    EXPECT_EQ(counters.mailboxSends(-1), 0u);

    // The capture contains the allreduce phase spans and the mailbox
    // post/wait spans, each nested inside a phase span of its thread.
    const auto events = recorder.snapshot();
    int phase_spans = 0;
    int mailbox_spans = 0;
    for (const auto& e : events) {
        EXPECT_GE(e.dur_us, 0.0) << e.name;
        if (e.cat == "ccl.allreduce")
            ++phase_spans;
        if (e.cat != "ccl.mailbox")
            continue;
        ++mailbox_spans;
        bool nested = false;
        for (const auto& outer : events) {
            if (outer.cat != "ccl.allreduce" || outer.pid != e.pid ||
                outer.tid != e.tid)
                continue;
            if (e.ts_us >= outer.ts_us &&
                e.ts_us + e.dur_us <= outer.ts_us + outer.dur_us)
                nested = true;
        }
        EXPECT_TRUE(nested) << e.name << " not nested in a phase span";
    }
    // Two phases per rank; one post + one wait span per transfer.
    EXPECT_EQ(phase_spans, 2 * kRanks);
    EXPECT_EQ(mailbox_spans, 8);

    recorder.clear();
    counters.reset();
}

TEST(RankCounters, ExportToRegistryUsesRankAndTotalNames)
{
    obs::RankCounters& counters = obs::RankCounters::global();
    counters.reset();
    obs::setThreadRank(3);
    counters.addMailboxSend();
    counters.addMailboxSend();
    counters.addCasRetries(5);
    obs::setThreadRank(-1);

    obs::MetricRegistry registry;
    counters.exportTo(registry);
    EXPECT_DOUBLE_EQ(registry.counter("ccl.rank3.mailbox_sends"), 2.0);
    EXPECT_DOUBLE_EQ(registry.counter("ccl.total.mailbox_sends"), 2.0);
    EXPECT_DOUBLE_EQ(registry.counter("ccl.rank3.cas_retries"), 5.0);
    counters.reset();
}

// --- Network metric export -------------------------------------------

TEST(NetworkMetrics, ExportAgreesWithChannelTelemetry)
{
    // Channel telemetry accumulates only while a capture is enabled,
    // so open the global gate before the run (export still goes to a
    // local registry).
    obs::MetricRegistry::global().enable();
    const topo::Graph graph = topo::makeDgx1();
    const topo::DoubleTreeEmbedding dt = topo::makeDgx1DoubleTree(graph);
    sim::Simulation sim;
    simnet::Network net(sim, graph);
    const simnet::ScheduleResult result = simnet::runDoubleTreeSchedule(
        sim, net, dt, 1 << 20, simnet::PhaseMode::kOverlapped, 4);
    obs::MetricRegistry::global().disable();
    ASSERT_GT(result.completion_time, 0.0);

    obs::MetricRegistry registry;
    net.exportMetrics(registry, result.completion_time, "t");

    int busy_channels = 0;
    util::RunningStats expected;
    for (int id = 0; id < graph.channelCount(); ++id) {
        const double busy = net.channelBusyTime(id);
        if (net.channelGrants(id) == 0)
            continue;
        ++busy_channels;
        const double utilization = busy / result.completion_time;
        expected.add(utilization);
        const std::string base =
            "t.channel." + std::to_string(id) + ".";
        EXPECT_NEAR(registry.gauge(base + "utilization"), utilization,
                    1e-12);
        EXPECT_NEAR(registry.gauge(base + "busy_s"), busy, 1e-12);
        EXPECT_GT(net.channelBytes(id), 0.0);
        EXPECT_NEAR(registry.gauge(base + "bytes"),
                    net.channelBytes(id), 1e-6);
    }
    ASSERT_GT(busy_channels, 0);
    const util::RunningStats exported =
        registry.histogram("t.channel_utilization");
    EXPECT_EQ(exported.count(), busy_channels);
    EXPECT_NEAR(exported.mean(), expected.mean(), 1e-12);
    EXPECT_NEAR(registry.gauge("t.horizon_s"), result.completion_time,
                1e-12);
}

} // namespace
} // namespace ccube
