#ifndef CCUBE_OBS_CONTEXT_H_
#define CCUBE_OBS_CONTEXT_H_

/**
 * @file
 * Per-thread observability context and per-rank synchronization
 * counters for the functional (`ccl::`) runtime.
 *
 * The functional path runs one thread per rank plus helper threads
 * (forwarding kernels, the overlapped reducer, the second tree).
 * `setThreadRank()` tags each such thread with the rank it acts for;
 * the low-level primitives (`SpinLock`, `BoundedSemaphore`, `Mailbox`)
 * then attribute their counters to the current rank without taking
 * any lock — each rank slot is a cache-padded atomic, the thread
 * analogue of per-channel NVLink counters.
 *
 * Counters mirror the paper's Fig. 11 semaphore protocol:
 *   - cas_retries      — failed CAS attempts inside SpinLock::lock();
 *   - post_stalls      — BoundedSemaphore::post() found count==capacity;
 *   - wait_stalls      — BoundedSemaphore::wait() found count==0;
 *   - post_stall_ns / wait_stall_ns — wall time spent inside those
 *                        stalls, so a watchdog report can name the
 *                        slowest rank (a retry count alone can't
 *                        distinguish one long wedge from many short
 *                        ones);
 *   - slot_full_stalls — Mailbox::send() found every receive buffer
 *                        occupied (the flow-control backpressure of
 *                        the paper's bounded receive rings);
 *   - mailbox_sends / mailbox_recvs — chunk traffic per rank;
 *   - executor_tasks / executor_parks / executor_unparks /
 *     executor_queue_peak — persistent-executor activity, so traces
 *     can distinguish a parked-thread wakeup from the old per-
 *     collective spawn cost;
 *   - ll_spins / ll_spin_ns — LL-protocol flag spins: episodes where
 *     an LL mailbox op actually spun on an inline arrival flag, and
 *     the wall time spent doing so. Kept separate from wait_stall_ns
 *     so stall attribution does not conflate the semaphore path (a
 *     fence round-trip the Simple protocol pays) with the LL path's
 *     data-arrival spin;
 *   - sm_parks / sm_resumes / sm_steals — state-machine runtime
 *     activity: rank tasks parking on a semaphore waiter, being
 *     rescheduled by a post, and migrating between pool workers via
 *     work stealing. Together with the engine's live gauges
 *     (ccl.sm.* in obs::Monitor) these close the executor-mode
 *     telemetry gap: helper-pool/worker occupancy is now visible per
 *     rank and per snapshot.
 */

#include <atomic>
#include <cstdint>

namespace ccube {
namespace obs {

class MetricRegistry;

/** Tags the calling thread as acting for @p rank (-1 = unknown). */
void setThreadRank(int rank);

/** Rank the calling thread acts for; -1 when untagged. */
int threadRank();

/**
 * Stable per-thread trace track id (assigned on first use). Distinct
 * helper threads of one rank get distinct tracks so their concurrent
 * spans render side by side instead of stacking.
 */
int threadTrack();

/**
 * Registers a display name for the calling thread's trace track under
 * the pid of its current rank. No-op when tracing is disabled.
 */
void labelThread(const char* label);

/**
 * Always-on, lock-free per-rank counters for the Fig. 11 protocol.
 * Increment cost is one relaxed atomic add on an already-slow path
 * (a retry or a stall), so the counters need no enable gate.
 */
class RankCounters
{
  public:
    static constexpr int kMaxRanks = 64;

    /** Process-wide instance. */
    static RankCounters& global();

    RankCounters() = default;
    RankCounters(const RankCounters&) = delete;
    RankCounters& operator=(const RankCounters&) = delete;

    /** Adds @p n failed CAS attempts for the calling thread's rank. */
    void addCasRetries(std::uint64_t n);

    /** Records one post() stall (count at capacity). */
    void addPostStall();

    /** Records one wait() stall (count at zero). */
    void addWaitStall();

    /** Adds @p ns of wall time spent stalled inside post(). */
    void addPostStallNs(std::uint64_t ns);

    /** Adds @p ns of wall time spent stalled inside wait(). */
    void addWaitStallNs(std::uint64_t ns);

    /** Records one send() that found all receive buffers full. */
    void addSlotFullStall();

    /** Records one mailbox send. */
    void addMailboxSend();

    /** Records one mailbox receive. */
    void addMailboxRecv();

    /** Records one task executed by the rank executor. */
    void addExecutorTask();

    /** Records one executor thread parking (no task pending). */
    void addExecutorPark();

    /** Records one executor thread waking with a task. */
    void addExecutorUnpark();

    /**
     * Records @p depth concurrently-busy executor helpers for
     * @p rank; the per-rank peak is kept (monotonic max).
     */
    void noteExecutorQueueDepth(int rank, std::uint64_t depth);

    /** Records one LL flag-spin episode lasting @p ns. */
    void addLLSpin(std::uint64_t ns);

    /** Records one state-machine task parking on a semaphore. */
    void addSmPark();

    /** Records one parked state-machine task being rescheduled. */
    void addSmResume();

    /** Records one state-machine task stolen by an idle worker. */
    void addSmSteal();

    /** Per-rank reads; @p rank -1 reads the unknown-rank slot. */
    std::uint64_t casRetries(int rank) const;
    std::uint64_t postStalls(int rank) const;
    std::uint64_t waitStalls(int rank) const;
    std::uint64_t postStallNs(int rank) const;
    std::uint64_t waitStallNs(int rank) const;
    std::uint64_t slotFullStalls(int rank) const;
    std::uint64_t mailboxSends(int rank) const;
    std::uint64_t mailboxRecvs(int rank) const;
    std::uint64_t executorTasks(int rank) const;
    std::uint64_t executorParks(int rank) const;
    std::uint64_t executorUnparks(int rank) const;
    std::uint64_t executorQueuePeak(int rank) const;
    std::uint64_t llSpins(int rank) const;
    std::uint64_t llSpinNs(int rank) const;
    std::uint64_t smParks(int rank) const;
    std::uint64_t smResumes(int rank) const;
    std::uint64_t smSteals(int rank) const;

    /** Sums across all rank slots (including unknown). */
    std::uint64_t totalCasRetries() const;
    std::uint64_t totalSlotFullStalls() const;
    std::uint64_t totalMailboxSends() const;
    std::uint64_t totalMailboxRecvs() const;
    std::uint64_t totalLLSpins() const;
    std::uint64_t totalLLSpinNs() const;
    std::uint64_t totalSmParks() const;
    std::uint64_t totalSmResumes() const;
    std::uint64_t totalSmSteals() const;

    /**
     * Exports non-zero counters as `ccl.rank<r>.<counter>` plus
     * `ccl.total.<counter>` into @p registry.
     */
    void exportTo(MetricRegistry& registry) const;

    /** Zeroes every counter (tests / between runs). */
    void reset();

  private:
    struct alignas(64) Slot {
        std::atomic<std::uint64_t> cas_retries{0};
        std::atomic<std::uint64_t> post_stalls{0};
        std::atomic<std::uint64_t> wait_stalls{0};
        std::atomic<std::uint64_t> post_stall_ns{0};
        std::atomic<std::uint64_t> wait_stall_ns{0};
        std::atomic<std::uint64_t> slot_full_stalls{0};
        std::atomic<std::uint64_t> mailbox_sends{0};
        std::atomic<std::uint64_t> mailbox_recvs{0};
        std::atomic<std::uint64_t> executor_tasks{0};
        std::atomic<std::uint64_t> executor_parks{0};
        std::atomic<std::uint64_t> executor_unparks{0};
        std::atomic<std::uint64_t> executor_queue_peak{0};
        std::atomic<std::uint64_t> ll_spins{0};
        std::atomic<std::uint64_t> ll_spin_ns{0};
        std::atomic<std::uint64_t> sm_parks{0};
        std::atomic<std::uint64_t> sm_resumes{0};
        std::atomic<std::uint64_t> sm_steals{0};
    };

    /** Slot for the calling thread (0 = unknown rank). */
    Slot& current();
    Slot& slotFor(int rank);
    const Slot& slot(int rank) const;

    Slot slots_[kMaxRanks + 1];
};

} // namespace obs
} // namespace ccube

#endif // CCUBE_OBS_CONTEXT_H_
