#ifndef CCUBE_TOPO_SWITCH_FABRIC_H_
#define CCUBE_TOPO_SWITCH_FABRIC_H_

/**
 * @file
 * Hierarchical indirect (switched) topology for scale-out simulation.
 *
 * §V-B3 of the paper evaluates scalability on "a hierarchical,
 * indirect topology (i.e., intermediate switches)". This builder
 * produces a two-level fat tree: endpoints attach to leaf switches,
 * leaf switches attach to a spine, with full bisection bandwidth.
 */

#include "topo/graph.h"

namespace ccube {
namespace topo {

/** Parameters of the switch fabric. */
struct SwitchFabricParams {
    int num_nodes = 16;              ///< endpoint count (ranks)
    int leaf_radix = 8;              ///< endpoints per leaf switch
    int links_per_node = 2;          ///< parallel endpoint↔leaf links
    double link_bandwidth = 25e9;    ///< bytes/s per direction
    double link_latency = 4.6e-6;    ///< per-hop latency, seconds
    double switch_latency = 0.7e-6;  ///< extra per-switch traversal
};

/**
 * Builds the fabric. Endpoints are node ids 0..num_nodes-1; leaf
 * switches follow, then a single spine switch (uplinks are widened to
 * leaf_radix × link_bandwidth so the spine is non-blocking).
 */
Graph makeSwitchFabric(const SwitchFabricParams& params = {});

/** Number of switch-to-switch and node-to-switch hops between two
 *  endpoints (2 within a leaf, 4 across leaves). */
int fabricHopCount(const SwitchFabricParams& params, NodeId a, NodeId b);

} // namespace topo
} // namespace ccube

#endif // CCUBE_TOPO_SWITCH_FABRIC_H_
