/**
 * @file
 * Ablation: gradient-queue dequeue granularity.
 *
 * C-Cube dequeues at layer granularity (the paper's design: the
 * Layer-Chunk Table gates whole layers). This harness compares:
 *   - none:  forward waits for the whole collective (= C1);
 *   - layer: the paper's gradient queuing;
 *   - chunk: hypothetical finest granularity — forward of a layer
 *            may start when its *first* bytes arrive (infeasible in
 *            practice, an upper bound on chaining benefit).
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "core/ccube_engine.h"
#include "core/chunk_mapper.h"
#include "dnn/compute_model.h"
#include "obs/session.h"
#include "sweep/sweep.h"
#include "util/flags.h"
#include "util/table.h"

int
main(int argc, char** argv)
{
    const ccube::util::Flags flags(argc, argv);
    ccube::obs::ObsSession obs_session(flags);
    using namespace ccube;

    std::cout << "=== Ablation: gradient-queue granularity "
                 "(ResNet-50, batch 32, low bandwidth) ===\n\n";

    core::CCubeEngine engine(dnn::buildResnet50());
    const dnn::NetworkModel& net = engine.network();
    const dnn::ComputeModel compute;
    const int batch = 32;
    const double bw_scale = 0.25;

    const double bytes = net.totalParamBytes();
    const auto schedule = engine.scheduler().commSchedule(
        core::Mode::kCCube, bytes, bw_scale);
    const core::ChunkMapper mapper = core::ChunkMapper::doubleTree(
        bytes, schedule.num_chunks / 2);
    const std::vector<double> layer_bytes = net.layerParamBytes();
    const auto fwd = compute.layerForwardTimes(net, batch);
    const double bwd = compute.backwardTime(net, batch);

    auto chained_end = [&](bool use_first_chunk) {
        double t = 0.0;
        for (int l = 0; l < net.numLayers(); ++l) {
            const auto chunks = mapper.chunksOfLayer(layer_bytes, l);
            double ready = 0.0;
            if (!chunks.empty()) {
                if (use_first_chunk) {
                    ready = 1e99;
                    for (int c : chunks)
                        ready = std::min(
                            ready,
                            schedule.chunk_ready
                                [static_cast<std::size_t>(c)]);
                } else {
                    for (int c : chunks)
                        ready = std::max(
                            ready,
                            schedule.chunk_ready
                                [static_cast<std::size_t>(c)]);
                }
            }
            t = std::max(t, bwd + ready) +
                fwd[static_cast<std::size_t>(l)];
        }
        return t;
    };

    double fwd_total = 0.0;
    for (double f : fwd)
        fwd_total += f;
    // The three granularity variants are independent given the shared
    // read-only schedule; evaluate them through the sweep pool.
    std::vector<double> times(3, 0.0);
    sweep::runIndexed(
        sweep::Options::fromFlags(flags), times.size(),
        [&](std::size_t i) {
            switch (i) {
              case 0:
                times[0] = bwd + schedule.completion_time + fwd_total;
                break;
              case 1: times[1] = chained_end(false); break;
              default: times[2] = chained_end(true); break;
            }
        });
    const double none = times[0];
    const double layer = times[1];
    const double chunk = times[2];

    util::Table table({"granularity", "iteration_ms", "vs_none_%"});
    table.addRow({"none (wait for collective, = C1)",
                  util::formatDouble(none * 1e3, 3), "0.0"});
    table.addRow({"layer (C-Cube gradient queue)",
                  util::formatDouble(layer * 1e3, 3),
                  util::formatDouble((none / layer - 1.0) * 100, 1)});
    table.addRow({"chunk (hypothetical upper bound)",
                  util::formatDouble(chunk * 1e3, 3),
                  util::formatDouble((none / chunk - 1.0) * 100, 1)});
    table.print(std::cout);
    std::cout << "\nLayer granularity captures nearly all of the "
                 "upper-bound benefit without any data partitioning "
                 "or re-ordering — the paper's design point.\n";
    return 0;
}
