#ifndef CCUBE_CCL_COMMUNICATOR_H_
#define CCUBE_CCL_COMMUNICATOR_H_

/**
 * @file
 * Communicator: the rank/"GPU" execution context of the functional
 * collective library.
 *
 * One persistent thread per rank plays the role of one GPU running
 * persistent kernels (see ccl/executor.h); mailboxes play the role of
 * NVLink P2P receive buffers. Mailboxes are keyed by (src, dst, flow)
 * because one physical link may carry several logical flows (e.g. the
 * two trees of a double tree, or a detour passing through a transit
 * GPU) with independent buffer pools — exactly as NCCL allocates
 * per-channel buffers.
 *
 * The mailbox registry is a dense flat table indexed by
 * (src, dst, flow): after a mailbox's first use the per-chunk lookup
 * is one relaxed-ish atomic load plus an index computation — no mutex,
 * no std::map — matching the paper's statically-built channel plan.
 */

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "ccl/allreduce.h"
#include "ccl/executor.h"
#include "ccl/fault.h"
#include "ccl/mailbox.h"

namespace ccube {

namespace topo {
class Graph;
} // namespace topo

namespace ccl {

class RankTask;

/** Identifies a logical flow multiplexed over a physical direction. */
using FlowId = int;

/** Well-known flow ids used by the built-in algorithms. */
enum : FlowId {
    kFlowRing = 0,          ///< ring neighbor traffic
    kFlowTree0Reduce = 1,   ///< tree 0, reduction direction
    kFlowTree0Broadcast = 2,///< tree 0, broadcast direction
    kFlowTree1Reduce = 3,   ///< tree 1, reduction direction
    kFlowTree1Broadcast = 4,///< tree 1, broadcast direction
};

/**
 * A group of ranks that communicate through mailboxes.
 */
class Communicator
{
  public:
    /** Flow ids must be in [0, kMaxFlows). */
    static constexpr int kMaxFlows = 8;

    /**
     * Creates a communicator of @p num_ranks ranks whose mailboxes
     * have @p mailbox_slots receive buffers each. @p exec_mode selects
     * the execution engine (persistent parked threads by default; the
     * legacy spawn-per-collective mode exists for A/B benchmarking).
     */
    explicit Communicator(int num_ranks, int mailbox_slots = 4,
                          RankExecutor::Mode exec_mode =
                              RankExecutor::defaultMode());

    ~Communicator();

    /** Number of participating ranks. */
    int numRanks() const { return num_ranks_; }

    /** Receive-buffer count per mailbox. */
    int mailboxSlots() const { return mailbox_slots_; }

    /**
     * The mailbox carrying flow @p flow from @p src to @p dst;
     * created on first use (thread-safe; lock-free after creation).
     */
    Mailbox& mailbox(int src, int dst, FlowId flow);

    /**
     * The persistent execution engine (created on first use; one
     * long-lived parked thread per rank plus the helper pool).
     */
    RankExecutor& executor();

    /**
     * Runs @p body concurrently on every rank — enqueued into the
     * executor's persistent rank threads — and waits for all of them.
     * Nested helper roles (forwarding kernels, the overlapped reducer,
     * the second tree) go through executor().submit().
     *
     * @p op names the collective for watchdog/abort attribution (a
     * string literal; stored by pointer). When a deadline is set (see
     * setDeadline) a CommWatchdog watches the whole run: if any rank
     * wedges past the deadline the abort epoch trips, every bounded
     * spin unblocks, and run() throws a structured CollectiveError
     * naming the failed rank, op, and blocked mailbox — instead of
     * hanging. An abort poisons the communicator (like NCCL after
     * ncclCommAbort): further run() calls rethrow until clearAbort().
     *
     * @p proto is the wire protocol the collective's mailbox traffic
     * uses — recorded as a `ccl.proto.<name>` telemetry counter so
     * traces show which protocol each collective ran (the body itself
     * passes the protocol to its mailbox ops).
     */
    void run(const std::function<void(int rank)>& body,
             const char* op = "collective",
             Protocol proto = Protocol::kSimple);

    /**
     * Execution engine this communicator was created with. The
     * collective algorithms branch on it: Mode::kStateMachine routes
     * them through runTasks() instead of run().
     */
    RankExecutor::Mode engineMode() const { return exec_mode_; }

    /**
     * State-machine counterpart of run(): drives @p tasks to
     * completion on the shared StateMachineEngine pool, under the same
     * envelope as run() — poison check, watchdog arm/disarm, monitor
     * collective edge, abort-wins error surfacing. @p op as in run().
     */
    void runTasks(std::vector<std::unique_ptr<RankTask>> tasks,
                  const char* op = "collective",
                  Protocol proto = Protocol::kSimple);

    /**
     * Auto-tuned AllReduce: consults the ccl::Tuner's cached selection
     * table for (topology shape, P, message size) and runs the chosen
     * (algorithm × protocol × chunking) cell — the NCCL-style "just
     * give me the fastest schedule" entry point. Honors
     * CCUBE_CCL_PROTO=ll|simple as a protocol override. Defined in
     * tuner.cpp.
     */
    AllReduceTrace runAuto(RankBuffers& buffers,
                           const topo::Graph& graph);

    /**
     * Sense-reversing barrier across all ranks; callable only from
     * inside run().
     */
    void barrier();

    // ---- fault tolerance ----

    /**
     * Sets the per-collective watchdog deadline; zero disables the
     * watchdog (the default unless CCUBE_CCL_DEADLINE_MS is set).
     */
    void setDeadline(std::chrono::nanoseconds deadline);

    /** Current watchdog deadline (zero = disabled). */
    std::chrono::nanoseconds deadline() const { return deadline_; }

    /** Process default: CCUBE_CCL_DEADLINE_MS, else zero (disabled). */
    static std::chrono::nanoseconds defaultDeadline();

    /** Attaches a fault injector (borrowed; null detaches). */
    void setFaultInjector(FaultInjector* injector);

    /**
     * Trips the abort epoch with @p info: every rank blocked in a
     * bounded spin throws AbortedWait, the in-flight (or next) run()
     * surfaces a CollectiveError. Callable from any thread — this is
     * the ncclCommAbort analog the watchdog also uses.
     */
    void abort(CollectiveError::Info info);

    /** Whether the abort epoch is tripped. */
    bool aborted() const { return fault_.abortState().aborted(); }

    /**
     * Re-arms an aborted communicator for further collectives:
     * flushes every mailbox the dead collective may have left chunks
     * in, then retires the abort generation. An abort that trips
     * concurrently (Communicator::abort is callable from any thread)
     * is NOT silently erased: the clear is epoch-checked, and a
     * generation that tripped mid-flush gets its own flush before
     * being retired — clearAbort() returns with the communicator
     * clean and every generation it retired actually flushed.
     */
    void clearAbort();

    /**
     * Test-only: @p hook runs after each mailbox flush inside
     * clearAbort(), before the epoch-checked clear — the window the
     * abort-during-clear regression test races an abort into. Null
     * removes the hook.
     */
    void setClearAbortHook(std::function<void()> hook);

    /** The fault runtime shared with the sync primitives. */
    CommFaultContext& faultContext() { return fault_; }

  private:
    std::size_t tableIndex(int src, int dst, FlowId flow) const;

    /** Shared collective envelope of run()/runTasks(): poison check,
     *  watchdog arm/disarm, monitor edge, abort-wins surfacing around
     *  @p launch (which blocks until the collective finishes). */
    void runEnvelope(const char* op,
                     const std::function<void()>& launch);

    const int num_ranks_;
    const int mailbox_slots_;
    const RankExecutor::Mode exec_mode_;

    /** Dense (src, dst, flow) → Mailbox* table; slots fill on first
     *  use and stay valid for the communicator's lifetime. */
    std::vector<std::atomic<Mailbox*>> table_;
    std::mutex create_mutex_;
    std::vector<std::unique_ptr<Mailbox>> owned_;

    std::once_flag executor_once_;
    std::unique_ptr<RankExecutor> executor_;

    // Fault tolerance: abort epoch + per-rank progress table, the
    // watchdog (created on first deadline-armed run), the deadline.
    CommFaultContext fault_;
    std::chrono::nanoseconds deadline_ = defaultDeadline();
    std::once_flag watchdog_once_;
    std::unique_ptr<CommWatchdog> watchdog_;

    // Barrier state.
    std::atomic<int> barrier_count_{0};
    std::atomic<int> barrier_sense_{0};

    // Test-only interposition point inside clearAbort() (see
    // setClearAbortHook).
    std::function<void()> clear_abort_hook_;
};

} // namespace ccl
} // namespace ccube

#endif // CCUBE_CCL_COMMUNICATOR_H_
