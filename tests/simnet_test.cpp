/**
 * @file
 * Timed-network tests: channel occupancy, multi-hop transfers, and —
 * the critical cross-validation — the event-driven collective
 * schedules reproducing the closed-form α-β costs of §II-C exactly on
 * ideal topologies (DESIGN.md invariant #6 plus Eqs. (2)(3)(7)).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "model/overlapped_tree_model.h"
#include "model/ring_model.h"
#include "model/tree_model.h"
#include "simnet/channel.h"
#include "simnet/double_tree_schedule.h"
#include "simnet/multi_ring_schedule.h"
#include "simnet/ring_schedule.h"
#include "simnet/transfer_engine.h"
#include "simnet/tree_schedule.h"
#include "topo/dgx1.h"
#include "topo/double_tree.h"
#include "topo/ring_embedding.h"

namespace ccube {
namespace simnet {
namespace {

constexpr double kBw = 25e9;
constexpr double kAlpha = 4.6e-6;

/** Fully connected NVLink graph over @p p nodes. */
topo::Graph
makeClique(int p)
{
    topo::Graph g("clique");
    for (int n = 0; n < p; ++n)
        g.addNode("N" + std::to_string(n));
    for (int a = 0; a < p; ++a)
        for (int b = a + 1; b < p; ++b)
            g.addLink(a, b, kBw, kAlpha);
    return g;
}

/** Directed ring graph over @p p nodes (bidirectional links). */
topo::Graph
makeRingGraph(int p)
{
    topo::Graph g("ring");
    for (int n = 0; n < p; ++n)
        g.addNode("N" + std::to_string(n));
    for (int n = 0; n < p; ++n)
        g.addLink(n, (n + 1) % p, kBw, kAlpha);
    return g;
}

TEST(Network, OccupancyIsAlphaPlusBytesOverBandwidth)
{
    sim::Simulation sim;
    const topo::Graph g = makeClique(2);
    Network net(sim, g);
    const int ch = g.channelIds(0, 1).front();
    EXPECT_NEAR(net.occupancy(ch, 1e6), kAlpha + 1e6 / kBw, 1e-15);
}

TEST(Network, BandwidthScaleDividesBandwidthOnly)
{
    sim::Simulation sim;
    const topo::Graph g = makeClique(2);
    Network net(sim, g, /*bandwidth_scale=*/0.25);
    const int ch = g.channelIds(0, 1).front();
    EXPECT_NEAR(net.occupancy(ch, 1e6), kAlpha + 4e6 / kBw, 1e-15);
}

TEST(Network, TransfersOnOneChannelSerialize)
{
    sim::Simulation sim;
    const topo::Graph g = makeClique(2);
    Network net(sim, g);
    std::vector<double> done;
    for (int i = 0; i < 3; ++i)
        net.transfer(0, 1, 1e6, [&]() { done.push_back(sim.now()); });
    sim.run();
    const double step = kAlpha + 1e6 / kBw;
    ASSERT_EQ(done.size(), 3u);
    EXPECT_NEAR(done[0], step, 1e-12);
    EXPECT_NEAR(done[1], 2 * step, 1e-12);
    EXPECT_NEAR(done[2], 3 * step, 1e-12);
}

TEST(Network, ParallelLanesDoNotContend)
{
    sim::Simulation sim;
    topo::Graph g("double");
    g.addNode("a");
    g.addNode("b");
    g.addLink(0, 1, kBw, kAlpha);
    g.addLink(0, 1, kBw, kAlpha);
    Network net(sim, g);
    std::vector<double> done;
    net.transfer(0, 1, 1e6, [&]() { done.push_back(sim.now()); }, 0);
    net.transfer(0, 1, 1e6, [&]() { done.push_back(sim.now()); }, 1);
    sim.run();
    const double step = kAlpha + 1e6 / kBw;
    ASSERT_EQ(done.size(), 2u);
    EXPECT_NEAR(done[0], step, 1e-12);
    EXPECT_NEAR(done[1], step, 1e-12);
}

TEST(TransferEngine, MultiHopStoreAndForward)
{
    sim::Simulation sim;
    const topo::Graph g = makeRingGraph(4);
    Network net(sim, g);
    TransferEngine engine(net);
    double done_at = -1.0;
    engine.sendAlongRoute(topo::Route{{0, 1, 2}}, 1e6,
                          [&]() { done_at = sim.now(); });
    sim.run();
    EXPECT_NEAR(done_at, 2 * (kAlpha + 1e6 / kBw), 1e-12);
}

TEST(TransferEngine, SendFindsRouteOnFabric)
{
    sim::Simulation sim;
    const topo::Graph g = makeRingGraph(6);
    Network net(sim, g);
    TransferEngine engine(net);
    double done_at = -1.0;
    engine.send(0, 2, 1e6, [&]() { done_at = sim.now(); });
    sim.run();
    EXPECT_NEAR(done_at, 2 * (kAlpha + 1e6 / kBw), 1e-12);
}

// -------------------------------------------------------------- ring

TEST(RingScheduleVsModel, MatchesEquationTwoExactly)
{
    const model::RingModel ring_model(
        model::AlphaBeta::fromBandwidth(kAlpha, kBw));
    for (int p : {2, 4, 8}) {
        sim::Simulation sim;
        const topo::Graph g = makeRingGraph(p);
        Network net(sim, g);
        const double n = 8e6;
        const ScheduleResult result = runRingSchedule(
            sim, net, topo::makeSequentialRing(p), n);
        EXPECT_NEAR(result.completion_time,
                    ring_model.allReduceTime(p, n),
                    ring_model.allReduceTime(p, n) * 1e-9)
            << "p=" << p;
    }
}

TEST(RingSchedule, ChunkTimesOutOfOrderAcrossRanks)
{
    sim::Simulation sim;
    const topo::Graph g = makeRingGraph(4);
    Network net(sim, g);
    const ScheduleResult result =
        runRingSchedule(sim, net, topo::makeSequentialRing(4), 4e6);
    // Rank 0's earliest chunk is chunk 1, rank 3's is chunk 0 —
    // different ranks get different chunks first.
    int earliest_rank0 = -1;
    int earliest_rank3 = -1;
    double best0 = 1e99;
    double best3 = 1e99;
    for (int c = 0; c < result.num_chunks; ++c) {
        if (result.chunk_at_rank[0][static_cast<std::size_t>(c)] <
            best0) {
            best0 = result.chunk_at_rank[0][static_cast<std::size_t>(c)];
            earliest_rank0 = c;
        }
        if (result.chunk_at_rank[3][static_cast<std::size_t>(c)] <
            best3) {
            best3 = result.chunk_at_rank[3][static_cast<std::size_t>(c)];
            earliest_rank3 = c;
        }
    }
    EXPECT_NE(earliest_rank0, earliest_rank3);
    // Ring turnaround equals completion in ready-at-all-ranks terms:
    // every chunk finishes its last AllGather hop within the final
    // step window.
    EXPECT_NEAR(result.turnaroundTime(), result.completion_time,
                result.completion_time * 0.2);
}

TEST(MultiRingSchedule, ScalesWithRingCount)
{
    const topo::Graph g = topo::makeDgx1();
    const auto rings = topo::findDisjointRings(g, 8, 4);
    ASSERT_GE(rings.size(), 3u);
    const double n = 64e6;

    sim::Simulation sim_one;
    Network net_one(sim_one, g);
    const double t_one =
        runRingSchedule(sim_one, net_one, rings.front(), n)
            .completion_time;

    sim::Simulation sim_multi;
    Network net_multi(sim_multi, g);
    const double t_multi =
        runMultiRingSchedule(sim_multi, net_multi, rings, n)
            .completion_time;
    // Disjoint rings divide the payload — speedup ≈ ring count.
    const double speedup = t_one / t_multi;
    EXPECT_GT(speedup, 0.8 * static_cast<double>(rings.size()));
    EXPECT_LE(speedup, 1.05 * static_cast<double>(rings.size()));
}

// -------------------------------------------------------------- tree

// Step-count convention: the paper's Eq. (3) counts log(P)+K steps
// per phase *including* the leaf-level reduce step of Fig. 5(a); the
// DES moves data only, so each phase takes (K−1+D) channel steps where
// D = log P is the hop depth. The DES is therefore exactly one step
// per phase tighter than Eq. (3) — asserted exactly below; the
// closed-form comparison with that convention folded in is covered by
// integration_test's SimVsModel.

TEST(TreeScheduleVsModel, TwoPhaseMatchesChunkedPipelineExactly)
{
    const int p = 4; // inorder(4): hop depth D = log2(4) = 2
    const int k = 16;
    const double n = 16e6;
    sim::Simulation sim;
    const topo::Graph g = makeClique(p);
    Network net(sim, g);
    const auto embedding =
        topo::embedTree(g, topo::BinaryTree::inorder(p));
    const ScheduleResult result = runTreeSchedule(
        sim, net, embedding, n, PhaseMode::kTwoPhase, k);
    const double s = kAlpha + (n / k) / kBw;
    // Reduction (K−1+D)s, then broadcast (K−1+D)s.
    EXPECT_NEAR(result.completion_time, 2.0 * (k - 1 + 2) * s, s * 1e-9);
}

TEST(TreeScheduleVsModel, OverlappedMatchesChunkedPipelineExactly)
{
    const int p = 4;
    const int k = 16;
    const double n = 16e6;
    sim::Simulation sim;
    const topo::Graph g = makeClique(p);
    Network net(sim, g);
    const auto embedding =
        topo::embedTree(g, topo::BinaryTree::inorder(p));
    const ScheduleResult result = runTreeSchedule(
        sim, net, embedding, n, PhaseMode::kOverlapped, k);
    const double s = kAlpha + (n / k) / kBw;
    // Single chained pipeline: (K−1+2D) steps.
    EXPECT_NEAR(result.completion_time, (k - 1 + 2.0 * 2) * s,
                s * 1e-9);
    // First chunk turns around after descending and climbing: 2D steps.
    EXPECT_NEAR(result.turnaroundTime(), 2.0 * 2 * s, s * 1e-9);
}

TEST(TreeSchedule, OverlappedNeverSlowerAcrossSweep)
{
    for (int p : {2, 4, 8, 16}) {
        for (int k : {1, 8, 64}) {
            const topo::Graph g = makeClique(p);
            const auto tree = topo::BinaryTree::inorder(p);

            sim::Simulation sim_a;
            Network net_a(sim_a, g);
            const double base =
                runTreeSchedule(sim_a, net_a, topo::embedTree(g, tree),
                                4e6, PhaseMode::kTwoPhase, k)
                    .completion_time;

            sim::Simulation sim_b;
            Network net_b(sim_b, g);
            const double over =
                runTreeSchedule(sim_b, net_b, topo::embedTree(g, tree),
                                4e6, PhaseMode::kOverlapped, k)
                    .completion_time;
            EXPECT_LE(over, base * (1.0 + 1e-9))
                << "p=" << p << " k=" << k;
        }
    }
}

TEST(TreeSchedule, InOrderChunkReadyTimes)
{
    sim::Simulation sim;
    const topo::Graph g = makeClique(8);
    Network net(sim, g);
    const ScheduleResult result = runTreeSchedule(
        sim, net, topo::embedTree(g, topo::BinaryTree::inorder(8)), 8e6,
        PhaseMode::kOverlapped, 16);
    for (int c = 1; c < result.num_chunks; ++c) {
        EXPECT_LE(result.chunk_ready[static_cast<std::size_t>(c - 1)],
                  result.chunk_ready[static_cast<std::size_t>(c)]);
    }
}

// ------------------------------------------------------- double tree

TEST(DoubleTreeSchedule, OverlappedBeatsTwoPhaseOnDgx1)
{
    const topo::Graph g = topo::makeDgx1();
    const auto dt = topo::makeDgx1DoubleTree(g);
    const double n = 64e6;

    sim::Simulation sim_a;
    Network net_a(sim_a, g);
    const ScheduleResult base = runDoubleTreeSchedule(
        sim_a, net_a, dt, n, PhaseMode::kTwoPhase, 32);

    sim::Simulation sim_b;
    Network net_b(sim_b, g);
    const ScheduleResult over = runDoubleTreeSchedule(
        sim_b, net_b, dt, n, PhaseMode::kOverlapped, 32);

    // Paper Fig. 12(a): ≥ 75% communication speedup at 64 MB.
    EXPECT_GT(base.completion_time / over.completion_time, 1.6);
    EXPECT_EQ(base.num_chunks, 64);
    EXPECT_EQ(over.num_chunks, 64);
}

TEST(DoubleTreeSchedule, NaiveEmbeddingContendsUnderOverlap)
{
    // The naive Fig. 10(a) embedding shares channels between trees;
    // FIFO contention must make overlap strictly slower than on the
    // conflict-free C-Cube embedding.
    const topo::Graph g = topo::makeDgx1();
    const auto good = topo::makeDgx1DoubleTree(g);
    const auto naive = topo::makeNaiveDgx1DoubleTree(g);
    const double n = 64e6;

    sim::Simulation sim_a;
    Network net_a(sim_a, g);
    const double t_good = runDoubleTreeSchedule(
                              sim_a, net_a, good, n,
                              PhaseMode::kOverlapped, 32)
                              .completion_time;

    sim::Simulation sim_b;
    Network net_b(sim_b, g);
    const double t_naive = runDoubleTreeSchedule(
                               sim_b, net_b, naive, n,
                               PhaseMode::kOverlapped, 32)
                               .completion_time;
    EXPECT_LT(t_good, t_naive);
}

TEST(DoubleTreeSchedule, MergedChunkIdsCoverBothTrees)
{
    const topo::Graph g = topo::makeDgx1();
    const auto dt = topo::makeDgx1DoubleTree(g);
    sim::Simulation sim;
    Network net(sim, g);
    const ScheduleResult result =
        runDoubleTreeSchedule(sim, net, dt, 8e6,
                              PhaseMode::kOverlapped, 4);
    EXPECT_EQ(result.num_chunks, 8);
    EXPECT_EQ(result.chunk_ready.size(), 8u);
    for (const auto& per_rank : result.chunk_at_rank) {
        EXPECT_EQ(per_rank.size(), 8u);
        for (double t : per_rank)
            EXPECT_GE(t, 0.0);
    }
}

TEST(ScheduleResult, MergeTakesMaxCompletion)
{
    ScheduleResult a;
    a.num_chunks = 1;
    a.completion_time = 2.0;
    a.chunk_at_rank = {{1.0}, {2.0}};
    a.chunk_ready = {2.0};
    ScheduleResult b;
    b.num_chunks = 1;
    b.completion_time = 3.0;
    b.chunk_at_rank = {{3.0}, {2.5}};
    b.chunk_ready = {3.0};
    a.merge(b);
    EXPECT_EQ(a.num_chunks, 2);
    EXPECT_DOUBLE_EQ(a.completion_time, 3.0);
    EXPECT_DOUBLE_EQ(a.turnaroundTime(), 2.0);
    EXPECT_EQ(a.chunk_at_rank[0].size(), 2u);
}

} // namespace
} // namespace simnet
} // namespace ccube
