#ifndef CCUBE_DNN_COMPUTE_MODEL_H_
#define CCUBE_DNN_COMPUTE_MODEL_H_

/**
 * @file
 * Roofline GPU compute-time model.
 *
 * Per-layer kernel time is the larger of the compute term
 * (FLOPs / sustained throughput) and the memory term
 * (bytes moved / memory bandwidth), plus a fixed kernel overhead —
 * enough fidelity to produce the per-layer compute profile of
 * Fig. 17 and the compute/communication balance of Figs. 1, 13, 16.
 */

#include <vector>

#include "dnn/network.h"

namespace ccube {
namespace dnn {

/** V100-class device parameters. */
struct GpuComputeParams {
    double peak_flops = 15.7e12;      ///< fp32 peak, FLOP/s
    double efficiency = 0.65;         ///< sustained fraction of peak
    double memory_bandwidth = 900e9;  ///< HBM2, bytes/s
    double kernel_overhead = 5e-6;    ///< per-layer launch cost, s
    double backward_flop_ratio = 2.0; ///< backward ≈ 2× forward FLOPs
};

/**
 * Computes layer and network execution times on one GPU.
 */
class ComputeModel
{
  public:
    explicit ComputeModel(GpuComputeParams params = {})
        : params_(params)
    {
    }

    /** Forward time of one layer for a mini-batch of @p batch. */
    double forwardTime(const Layer& layer, int batch) const;

    /** Backward time of one layer (activation + weight gradients). */
    double backwardTime(const Layer& layer, int batch) const;

    /** Sum of per-layer forward times. */
    double forwardTime(const NetworkModel& network, int batch) const;

    /** Sum of per-layer backward times. */
    double backwardTime(const NetworkModel& network, int batch) const;

    /** Per-layer forward times in forward order. */
    std::vector<double>
    layerForwardTimes(const NetworkModel& network, int batch) const;

    /** Per-layer backward times in forward order. */
    std::vector<double>
    layerBackwardTimes(const NetworkModel& network, int batch) const;

    const GpuComputeParams& params() const { return params_; }

  private:
    double kernelTime(double flops, double bytes) const;

    GpuComputeParams params_;
};

} // namespace dnn
} // namespace ccube

#endif // CCUBE_DNN_COMPUTE_MODEL_H_
