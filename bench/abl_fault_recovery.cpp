/**
 * @file
 * Ablation: fault recovery — fail an NVLink mid-collective, detect,
 * re-plan, re-run.
 *
 * For every unordered NVLink pair of the DGX-1, this harness:
 *
 *   1. runs the healthy overlapped double tree (baseline bandwidth),
 *   2. re-runs it with a FaultPlan that kills both directions of the
 *      pair at 30% of the healthy completion time — the DES drains
 *      with arrivals outstanding, the detection signal,
 *   3. charges a watchdog deadline (--watchdog-ms, simulated) for
 *      detection, then calls core::recoverSchedule over the survivor
 *      graph,
 *   4. re-runs the collective on whatever rung the ladder landed on
 *      (C-Cube overlapped, contended double tree two-phase, or
 *      disjoint rings),
 *
 * and reports time-to-recover (detect + search + re-run) and
 * post-recovery bandwidth per fault scenario, as a table and as
 * bench_ccl/v1 records.
 */

#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/recovery.h"
#include "core/report.h"
#include "obs/analyze.h"
#include "obs/diff.h"
#include "obs/session.h"
#include "obs/trace.h"
#include "simnet/channel.h"
#include "simnet/double_tree_schedule.h"
#include "simnet/fault_plan.h"
#include "simnet/multi_ring_schedule.h"
#include "topo/dgx1.h"
#include "topo/double_tree.h"
#include "util/bench_json.h"
#include "util/flags.h"
#include "util/table.h"
#include "util/units.h"

namespace {

using namespace ccube;

/** All unordered NVLink pairs of @p graph (the fault scenarios). */
std::vector<std::pair<topo::NodeId, topo::NodeId>>
nvlinkPairs(const topo::Graph& graph)
{
    std::vector<std::pair<topo::NodeId, topo::NodeId>> pairs;
    for (int id = 0; id < graph.channelCount(); ++id) {
        const topo::ChannelDesc& desc = graph.channel(id);
        if (desc.kind != topo::LinkKind::kNvlink)
            continue;
        const auto pair = desc.src < desc.dst
                              ? std::make_pair(desc.src, desc.dst)
                              : std::make_pair(desc.dst, desc.src);
        bool seen = false;
        for (const auto& existing : pairs)
            seen = seen || existing == pair;
        if (!seen)
            pairs.push_back(pair);
    }
    return pairs;
}

/** Every directed channel id between the two endpoints of @p pair. */
std::vector<int>
pairChannelIds(const topo::Graph& graph,
               const std::pair<topo::NodeId, topo::NodeId>& pair)
{
    std::vector<int> ids = graph.channelIds(pair.first, pair.second);
    for (int id : graph.channelIds(pair.second, pair.first))
        ids.push_back(id);
    return ids;
}

/** Simulated completion time of the recovered schedule. */
double
rerunRecovered(const core::RecoveryResult& recovery, double bytes)
{
    sim::Simulation sim;
    simnet::Network net(sim, recovery.graph);
    switch (recovery.kind) {
    case core::RecoveryKind::kCCube:
        // Conflict-free: the overlapped schedule is valid again.
        return simnet::runDoubleTreeSchedule(
                   sim, net, *recovery.double_tree, bytes,
                   simnet::PhaseMode::kOverlapped, 32)
            .completion_time;
    case core::RecoveryKind::kDoubleTree:
        // Contended embedding: overlap premise is gone, run two-phase.
        return simnet::runDoubleTreeSchedule(
                   sim, net, *recovery.double_tree, bytes,
                   simnet::PhaseMode::kTwoPhase, 32)
            .completion_time;
    case core::RecoveryKind::kRing:
        return simnet::runMultiRingSchedule(sim, net, recovery.rings,
                                            bytes)
            .completion_time;
    case core::RecoveryKind::kNone:
        break;
    }
    return 0.0;
}

} // namespace

int
main(int argc, char** argv)
{
    const util::Flags flags(argc, argv);
    obs::ObsSession obs_session(flags);
    const double bytes = util::mib(64);
    const double watchdog_s =
        flags.getDouble("watchdog-ms", 5.0) * 1e-3;

    std::cout << "=== Ablation: fault recovery (DGX-1, 64 MiB, each "
                 "NVLink pair failed mid-collective) ===\n\n";

    const topo::Graph graph = topo::makeDgx1();
    const topo::DoubleTreeEmbedding healthy_tree =
        topo::makeDgx1DoubleTree(graph);

    // Healthy baseline: what the fabric delivers with no faults. The
    // trace is kept (local recorder, redirected) as the obs::diff
    // baseline for every fault scenario.
    double healthy_time = 0.0;
    obs::TraceRecorder healthy_recorder;
    healthy_recorder.enable();
    {
        obs::ScopedTraceRedirect redirect(&healthy_recorder);
        sim::Simulation sim;
        simnet::Network net(sim, graph);
        healthy_time =
            simnet::runDoubleTreeSchedule(
                sim, net, healthy_tree, bytes,
                simnet::PhaseMode::kOverlapped, 32)
                .completion_time;
    }
    healthy_recorder.disable();
    const obs::TraceAnalyzer healthy_analysis(
        healthy_recorder.snapshot());
    const double healthy_bw = bytes / healthy_time;
    const double t_fail = 0.3 * healthy_time;
    std::cout << "healthy completion: "
              << util::formatDouble(healthy_time * 1e3, 3)
              << " ms (" << util::formatDouble(healthy_bw / 1e9, 2)
              << " GB/s); links fail at t="
              << util::formatDouble(t_fail * 1e3, 3)
              << " ms, watchdog deadline "
              << util::formatDouble(watchdog_s * 1e3, 3) << " ms\n\n";

    util::Table table({"failed_pair", "dropped", "rung", "detect_ms",
                       "search_ms", "rerun_ms", "recover_ms",
                       "post_bw_GB/s", "bw_retained_%", "blamed",
                       "diff_attr_%"});
    std::vector<util::BenchRecord> records;
    std::ostringstream scenario_reports;
    std::vector<double> recover_ms_samples;
    int blamed_channel_ok = 0;
    int blamed_rank_ok = 0;
    int diff_ok = 0;
    int scenarios = 0;

    // Serial scenario loop: recoverSchedule fans its own embedding
    // attempts across workers, so the sweep stays single-stream here.
    for (const auto& pair : nvlinkPairs(graph)) {
        const std::vector<int> failed = pairChannelIds(graph, pair);

        // Fault injection: both directions die mid-collective. The
        // faulted trace goes to a local recorder so each scenario gets
        // its own root-cause analysis and healthy-vs-faulted diff.
        obs::TraceRecorder faulted_recorder;
        faulted_recorder.enable();
        simnet::FaultedRunResult faulted;
        {
            obs::ScopedTraceRedirect redirect(&faulted_recorder);
            sim::Simulation sim;
            simnet::Network net(sim, graph);
            simnet::FaultPlan plan;
            for (int id : failed)
                plan.failChannel(t_fail, id);
            faulted = simnet::runDoubleTreeWithFaults(
                sim, net, healthy_tree, bytes,
                simnet::PhaseMode::kOverlapped, 32, plan);
        }
        faulted_recorder.disable();

        // Detection: the flow dies at t_fail, the watchdog fires one
        // deadline later. A pair the schedule never routed over still
        // completes — recovery is then purely precautionary re-plan.
        const double detect_s =
            faulted.completed ? 0.0 : watchdog_s;

        // Root cause: the ranked report must name one of the two
        // injected channel ids and blame one of the pair's endpoints.
        const obs::TraceAnalyzer faulted_analysis(
            faulted_recorder.snapshot());
        const obs::RootCauseReport root_cause =
            obs::analyzeRootCause(faulted_analysis);
        bool channel_named = false;
        for (int id : failed)
            channel_named =
                channel_named || root_cause.blamed_channel == id;
        const bool rank_named =
            root_cause.blamed_rank == pair.first ||
            root_cause.blamed_rank == pair.second;
        blamed_channel_ok += channel_named ? 1 : 0;
        blamed_rank_ok += rank_named ? 1 : 0;

        // Differential analysis: where did healthy-vs-faulted time go?
        const obs::TraceDiff diff =
            obs::diffTraces(healthy_analysis, faulted_analysis);
        const double attr = diff.attributedFraction();
        diff_ok += attr >= 0.8 ? 1 : 0;
        ++scenarios;

        core::RecoveryOptions options;
        options.search.num_ranks = graph.nodeCount();
        const core::RecoveryResult recovery =
            core::recoverSchedule(graph, failed, options);

        const double rerun_time =
            recovery.usable() ? rerunRecovered(recovery, bytes) : 0.0;
        const double recover_s =
            detect_s + recovery.search_seconds + rerun_time;
        const double post_bw =
            rerun_time > 0.0 ? bytes / rerun_time : 0.0;

        const std::string pair_name = std::to_string(pair.first) +
                                      "_" + std::to_string(pair.second);
        table.addRow(
            {"(" + std::to_string(pair.first) + "," +
                 std::to_string(pair.second) + ")",
             std::to_string(faulted.dropped_transfers),
             core::recoveryKindName(recovery.kind),
             util::formatDouble(detect_s * 1e3, 3),
             util::formatDouble(recovery.search_seconds * 1e3, 3),
             util::formatDouble(rerun_time * 1e3, 3),
             util::formatDouble(recover_s * 1e3, 3),
             util::formatDouble(post_bw / 1e9, 2),
             util::formatDouble(post_bw / healthy_bw * 100.0, 1),
             "ch" + std::to_string(root_cause.blamed_channel) + ":r" +
                 std::to_string(root_cause.blamed_rank) +
                 (channel_named && rank_named ? "" : " ?"),
             util::formatDouble(attr * 100.0, 1)});
        recover_ms_samples.push_back(recover_s * 1e3);

        scenario_reports << "### scenario pair (" << pair.first << ","
                         << pair.second << "), failed channels";
        for (int id : failed)
            scenario_reports << " " << id;
        scenario_reports << "\n";
        obs::writeRootCauseReport(scenario_reports, root_cause);
        obs::writeDiffReport(scenario_reports, diff,
                             /*max_segments=*/8);
        scenario_reports << "\n";

        util::BenchRecord record;
        record.source = "abl_fault_recovery";
        record.kind = "fault_recovery";
        record.name = "pair_" + pair_name;
        record.mode = core::recoveryKindName(recovery.kind);
        record.bytes = static_cast<std::int64_t>(bytes);
        record.ns_per_op = recover_s * 1e9;
        record.extra["t_fail_s"] = t_fail;
        record.extra["detect_s"] = detect_s;
        record.extra["search_s"] = recovery.search_seconds;
        record.extra["rerun_s"] = rerun_time;
        record.extra["post_bw_gbps"] = post_bw / 1e9;
        record.extra["healthy_bw_gbps"] = healthy_bw / 1e9;
        record.extra["dropped_transfers"] =
            static_cast<double>(faulted.dropped_transfers);
        record.extra["rung"] =
            static_cast<double>(static_cast<int>(recovery.kind));
        record.extra["blamed_channel"] =
            static_cast<double>(root_cause.blamed_channel);
        record.extra["blamed_rank"] =
            static_cast<double>(root_cause.blamed_rank);
        record.extra["diff_attributed_frac"] = attr;
        records.push_back(std::move(record));
    }

    table.print(std::cout);
    std::cout << "\nroot-cause named an injected failed channel in "
              << blamed_channel_ok << "/" << scenarios
              << " scenarios and blamed a pair endpoint in "
              << blamed_rank_ok << "/" << scenarios
              << "; obs::diff attributed >=80% of the delta in "
              << diff_ok << "/" << scenarios << ".\n";
    {
        util::Table quantiles = core::makeQuantileTable();
        core::addQuantileRow(quantiles, "time_to_recover",
                             recover_ms_samples);
        std::cout << "\n";
        quantiles.print(std::cout);
    }
    std::cout << "\nEvery single-link failure on the DGX-1 leaves a "
                 "usable schedule: most survivor graphs still embed a "
                 "conflict-free double tree (full C-Cube bandwidth), "
                 "and the rest fall back down the ladder rather than "
                 "hanging the job.\n";

    // Degraded-but-alive sweeps: kChannelDegrade and kNodeSlowdown
    // never drop traffic, so the schedule must complete on the SAME
    // embedding, just slower — the supervisor's rationale for keeping
    // degraded channels in the plan (health-scored, not excluded).
    std::cout << "\n=== Degraded-but-alive sweeps (no re-plan: same "
                 "schedule, lower bandwidth) ===\n\n";
    util::Table degrade_table({"scenario", "factor", "runs",
                               "completed", "median_ms", "worst_ms",
                               "worst_bw_retained_%"});
    auto runFaulted = [&](const simnet::FaultPlan& plan) {
        sim::Simulation sim;
        simnet::Network net(sim, graph);
        return simnet::runDoubleTreeWithFaults(
            sim, net, healthy_tree, bytes,
            simnet::PhaseMode::kOverlapped, 32, plan);
    };
    auto addDegradeRow = [&](const std::string& scenario,
                             const std::string& kind, double factor,
                             int runs, int completed,
                             std::vector<double> times) {
        std::sort(times.begin(), times.end());
        const double median = times[times.size() / 2];
        const double worst = times.back();
        const double retained = healthy_time / worst * 100.0;
        degrade_table.addRow(
            {scenario, util::formatDouble(factor, 2),
             std::to_string(runs), std::to_string(completed),
             util::formatDouble(median * 1e3, 3),
             util::formatDouble(worst * 1e3, 3),
             util::formatDouble(retained, 1)});
        util::BenchRecord record;
        record.source = "abl_fault_recovery";
        record.kind = kind;
        record.name = scenario + "_f" + util::formatDouble(factor, 2);
        record.mode = "degraded";
        record.bytes = static_cast<std::int64_t>(bytes);
        record.ns_per_op = worst * 1e9;
        record.extra["factor"] = factor;
        record.extra["runs"] = static_cast<double>(runs);
        record.extra["completed"] = static_cast<double>(completed);
        record.extra["median_s"] = median;
        record.extra["worst_s"] = worst;
        record.extra["healthy_s"] = healthy_time;
        record.extra["worst_bw_retained_frac"] = healthy_time / worst;
        records.push_back(std::move(record));
    };

    for (const double factor : {0.5, 0.25, 0.1}) {
        std::vector<double> times;
        int completed = 0;
        int runs = 0;
        for (const auto& pair : nvlinkPairs(graph)) {
            simnet::FaultPlan plan;
            for (int id : pairChannelIds(graph, pair))
                plan.degradeChannel(t_fail, id, factor);
            const simnet::FaultedRunResult run = runFaulted(plan);
            completed += run.completed ? 1 : 0;
            times.push_back(run.end_time);
            ++runs;
        }
        addDegradeRow("channel_degrade", "fault_degrade", factor, runs,
                      completed, std::move(times));
    }
    for (const double factor : {0.5, 0.25}) {
        std::vector<double> times;
        int completed = 0;
        int runs = 0;
        for (topo::NodeId node = 0; node < graph.nodeCount(); ++node) {
            simnet::FaultPlan plan;
            plan.slowNode(t_fail, node, factor);
            const simnet::FaultedRunResult run = runFaulted(plan);
            completed += run.completed ? 1 : 0;
            times.push_back(run.end_time);
            ++runs;
        }
        addDegradeRow("node_slowdown", "fault_slowdown", factor, runs,
                      completed, std::move(times));
    }
    degrade_table.print(std::cout);
    std::cout << "\nDegrades and slowdowns are survivable by "
                 "construction: every sweep run completed without a "
                 "re-plan, so the resilience supervisor treats them as "
                 "health-score inputs rather than exclusions.\n";

    const std::string path = util::benchOutputPath();
    util::writeBenchRecords(path, records, /*append=*/true);
    std::cout << "\nwrote " << records.size() << " records to " << path
              << "\n";

    obs_session.finish();
    // Per-scenario root-cause + diff reports replace the session's
    // whole-process report: the per-scenario captures are what name
    // each injected failure.
    const std::string rootcause_path = flags.get("rootcause-out", "");
    if (!rootcause_path.empty()) {
        std::ofstream out(rootcause_path);
        out << scenario_reports.str();
        std::cout << "wrote per-scenario root-cause reports to "
                  << rootcause_path << "\n";
    }
    return 0;
}
