#ifndef CCUBE_CORE_GRADIENT_QUEUE_H_
#define CCUBE_CORE_GRADIENT_QUEUE_H_

/**
 * @file
 * Gradient queuing (paper §III-D, Fig. 9): the mechanism that chains
 * collective communication with next-iteration forward computation.
 *
 * Components, exactly as in the paper:
 *  - Enqueue Semaphore — points at the last fully reduced chunk that
 *    arrived (a monotonic counter posted by the broadcast phase);
 *  - Gradient Queue — the gradient memory itself, reused in place
 *    thanks to the tree algorithm's in-order property;
 *  - Layer Index Counter (LIC) — the next layer awaiting computation;
 *  - Layer-Chunk Table — last gradient chunk offset of each layer.
 *
 * dequeueLayer(L) blocks (paper's check) until every chunk of layer L
 * has been enqueued, then advances the LIC. Because memory is reused
 * in place, enqueue carries no payload — only the semaphore moves.
 */

#include <atomic>
#include <cstdint>
#include <vector>

#include "ccl/sync_primitives.h"

namespace ccube {
namespace core {

/**
 * Thread-safe gradient queue for one rank.
 */
class GradientQueue
{
  public:
    /**
     * @param layer_chunk_table  per layer, the cumulative chunk count
     *        up to and including that layer (i.e. one past the last
     *        chunk offset); must be non-decreasing.
     */
    explicit GradientQueue(std::vector<std::int64_t> layer_chunk_table);

    GradientQueue(const GradientQueue&) = delete;
    GradientQueue& operator=(const GradientQueue&) = delete;

    /** Number of layers in the table. */
    int numLayers() const
    {
        return static_cast<int>(layer_chunk_table_.size());
    }

    /** Total chunks the queue expects in one iteration. */
    std::int64_t totalChunks() const;

    /**
     * Broadcast side: one fully reduced chunk arrived (in order); the
     * enqueue semaphore advances. Called by the collective's broadcast
     * phase as each chunk lands.
     */
    void enqueueChunk();

    /**
     * Compute side: block until layer @p layer is fully enqueued, then
     * advance the Layer Index Counter. Layers must be dequeued in
     * order — forward computation is in-order (Observation #3).
     */
    void dequeueLayer(int layer);

    /** Non-blocking dequeue; true when the layer was ready. */
    bool tryDequeueLayer(int layer);

    /** Current value of the Layer Index Counter. */
    int layerIndexCounter() const
    {
        return lic_.load(std::memory_order_acquire);
    }

    /** Chunks enqueued so far (Enqueue Semaphore value). */
    std::int64_t enqueued() const { return enqueue_semaphore_.value(); }

    /** Last chunk offset (cumulative count) of @p layer. */
    std::int64_t layerChunkBound(int layer) const;

    /** Resets the semaphore and LIC for the next iteration. */
    void resetIteration();

  private:
    ccl::CheckableCounter enqueue_semaphore_;
    std::atomic<int> lic_{0};
    std::vector<std::int64_t> layer_chunk_table_;
};

} // namespace core
} // namespace ccube

#endif // CCUBE_CORE_GRADIENT_QUEUE_H_
