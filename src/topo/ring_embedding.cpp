#include "topo/ring_embedding.h"

#include <map>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace ccube {
namespace topo {

namespace {

/** Remaining same-direction capacity between ordered pairs. */
class Capacity
{
  public:
    explicit Capacity(const Graph& graph) : graph_(graph) {}

    int
    remaining(NodeId src, NodeId dst) const
    {
        const auto it = used_.find({src, dst});
        const int used = it == used_.end() ? 0 : it->second;
        return graph_.linkCount(src, dst) - used;
    }

    void consume(NodeId src, NodeId dst) { ++used_[{src, dst}]; }

    void
    consumeRing(const RingEmbedding& ring)
    {
        for (int i = 0; i < ring.size(); ++i) {
            consume(ring.order[static_cast<std::size_t>(i)],
                    ring.next(i));
        }
    }

  private:
    const Graph& graph_;
    std::map<std::pair<NodeId, NodeId>, int> used_;
};

bool
extend(const Graph& graph, int num_ranks, std::vector<NodeId>& path,
       std::vector<bool>& used, const Capacity* capacity)
{
    auto usable = [&](NodeId src, NodeId dst) {
        if (capacity)
            return capacity->remaining(src, dst) > 0;
        return graph.hasChannel(src, dst);
    };
    if (static_cast<int>(path.size()) == num_ranks)
        return usable(path.back(), path.front());

    const NodeId here = path.back();
    for (NodeId next : graph.neighbors(here)) {
        if (next >= num_ranks || used[static_cast<std::size_t>(next)] ||
            !usable(here, next)) {
            continue;
        }
        used[static_cast<std::size_t>(next)] = true;
        path.push_back(next);
        if (extend(graph, num_ranks, path, used, capacity))
            return true;
        path.pop_back();
        used[static_cast<std::size_t>(next)] = false;
    }
    return false;
}

RingEmbedding
findRingWithCapacity(const Graph& graph, int num_ranks,
                     const Capacity* capacity)
{
    std::vector<NodeId> path{0};
    std::vector<bool> used(static_cast<std::size_t>(num_ranks), false);
    used[0] = true;
    RingEmbedding ring;
    if (extend(graph, num_ranks, path, used, capacity))
        ring.order = std::move(path);
    return ring;
}

} // namespace

RingEmbedding
findHamiltonianRing(const Graph& graph, int num_ranks)
{
    CCUBE_CHECK(num_ranks >= 2, "ring needs at least two ranks");
    CCUBE_CHECK(num_ranks <= graph.nodeCount(), "too many ranks");
    return findRingWithCapacity(graph, num_ranks, nullptr);
}

std::vector<RingEmbedding>
findDisjointRings(const Graph& graph, int num_ranks, int max_rings)
{
    CCUBE_CHECK(num_ranks >= 2, "ring needs at least two ranks");
    CCUBE_CHECK(max_rings >= 1, "need at least one ring");
    Capacity capacity(graph);
    std::vector<RingEmbedding> rings;
    for (int r = 0; r < max_rings; ++r) {
        RingEmbedding ring =
            findRingWithCapacity(graph, num_ranks, &capacity);
        if (ring.size() == 0)
            break;
        capacity.consumeRing(ring);
        rings.push_back(std::move(ring));
    }
    return rings;
}

RingEmbedding
makeSequentialRing(int num_ranks)
{
    CCUBE_CHECK(num_ranks >= 2, "ring needs at least two ranks");
    RingEmbedding ring;
    ring.order.resize(static_cast<std::size_t>(num_ranks));
    for (int i = 0; i < num_ranks; ++i)
        ring.order[static_cast<std::size_t>(i)] = i;
    return ring;
}

bool
ringIsPhysical(const Graph& graph, const RingEmbedding& ring)
{
    if (ring.size() < 2)
        return false;
    for (int i = 0; i < ring.size(); ++i) {
        const NodeId here = ring.order[static_cast<std::size_t>(i)];
        if (!graph.hasChannel(here, ring.next(i)))
            return false;
    }
    return true;
}

} // namespace topo
} // namespace ccube
