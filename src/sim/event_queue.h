#ifndef CCUBE_SIM_EVENT_QUEUE_H_
#define CCUBE_SIM_EVENT_QUEUE_H_

/**
 * @file
 * Discrete-event queue: the heart of the timed network simulator.
 *
 * Events are (time, priority, sequence) ordered; the sequence number
 * makes simultaneous events deterministic (FIFO among equal keys),
 * which the collective schedules rely on for reproducible timelines.
 *
 * Layout is split for the hot path: the ordering keys live in a 4-ary
 * implicit heap of 24-byte nodes (three nodes per cache line, and a
 * 4-ary heap does ~half the levels of a binary one), while the
 * callbacks live in a slab pool of sim::EventFn slots addressed by
 * index and recycled through a free list. Callbacks are small-buffer
 * inline callables (util::InlineFunction), so the common schedule →
 * fire cycle allocates nothing and nothing is ever copied — pop moves
 * the callback out of its slot, which fixes the old
 * priority_queue::top() copy-on-pop.
 */

#include <cstdint>
#include <vector>

#include "util/inline_function.h"

namespace ccube {
namespace sim {

/** Simulated time in seconds. */
using Time = double;

/**
 * Callback executed when an event fires. Move-only, with 48 bytes of
 * in-place storage — enough for every capture the schedules make
 * (`this` plus a few scalars, or `this` plus one nested EventFn slot
 * reference); bigger captures transparently heap-allocate.
 */
using EventFn = util::InlineFunction<void(), 48>;

/**
 * Priority queue of timestamped events with deterministic tie-breaking.
 */
class EventQueue
{
  public:
    /** Schedules @p fn at absolute time @p when (>= current time). */
    void schedule(Time when, EventFn fn, int priority = 0);

    /** True when no events remain. */
    bool empty() const { return heap_.empty(); }

    /** Number of pending events. */
    std::size_t size() const { return heap_.size(); }

    /** Current simulated time (time of the last executed event). */
    Time now() const { return now_; }

    /**
     * Executes the earliest pending event.
     * @return false when the queue was empty.
     */
    bool step();

    /** Runs until the queue drains; returns the final time. */
    Time run();

    /**
     * Runs until simulated time would exceed @p deadline; events at
     * exactly @p deadline still execute. Returns the final time.
     */
    Time runUntil(Time deadline);

    /** Total events executed since construction. */
    std::uint64_t executedCount() const { return executed_; }

    /** Drops all pending events and resets the clock to zero. */
    void reset();

  private:
    /** Heap node: ordering key plus the pool slot of the callback. */
    struct Node {
        Time when;
        int priority;
        std::uint32_t slot;
        std::uint64_t seq;
    };

    /** Strict (when, priority, seq) order; seq is unique, so this is a
     *  total order and heap shape cannot affect pop order. */
    static bool
    earlier(const Node& a, const Node& b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        if (a.priority != b.priority)
            return a.priority < b.priority;
        return a.seq < b.seq;
    }

    void siftUp(std::size_t index);
    void siftDown(std::size_t index);

    std::vector<Node> heap_;        ///< 4-ary implicit min-heap
    std::vector<EventFn> pool_;     ///< callback slab, slot-addressed
    std::vector<std::uint32_t> free_slots_;
    Time now_ = 0.0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace sim
} // namespace ccube

#endif // CCUBE_SIM_EVENT_QUEUE_H_
