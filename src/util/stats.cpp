#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace ccube {
namespace util {

void
RunningStats::merge(const RunningStats& other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double n1 = static_cast<double>(count_);
    const double n2 = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double total = n1 + n2;
    mean_ += delta * n2 / total;
    m2_ += other.m2_ + delta * delta * n1 * n2 / total;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
RunningStats::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
quantileSorted(const std::vector<double>& sorted, double q)
{
    CCUBE_CHECK(!sorted.empty(), "quantile of empty sample set");
    CCUBE_CHECK(q >= 0.0 && q <= 1.0, "quantile out of range");
    if (sorted.size() == 1)
        return sorted.front();
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double
quantileInPlace(std::vector<double>& samples, double q)
{
    CCUBE_CHECK(!samples.empty(), "quantile of empty sample set");
    std::sort(samples.begin(), samples.end());
    return quantileSorted(samples, q);
}

double
quantile(std::vector<double> samples, double q)
{
    return quantileInPlace(samples, q);
}

double
geomean(const std::vector<double>& samples)
{
    if (samples.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double s : samples) {
        CCUBE_CHECK(s > 0.0, "geomean requires positive samples");
        log_sum += std::log(s);
    }
    return std::exp(log_sum / static_cast<double>(samples.size()));
}

} // namespace util
} // namespace ccube
