#include "dnn/network.h"

#include "util/logging.h"

namespace ccube {
namespace dnn {

NetworkModel::NetworkModel(std::string name, std::vector<Layer> layers)
    : name_(std::move(name)), layers_(std::move(layers))
{
    CCUBE_CHECK(!layers_.empty(), "network needs at least one layer");
}

const Layer&
NetworkModel::layer(int index) const
{
    CCUBE_CHECK(index >= 0 && index < numLayers(),
                "bad layer index " << index);
    return layers_[static_cast<std::size_t>(index)];
}

std::int64_t
NetworkModel::totalParams() const
{
    std::int64_t total = 0;
    for (const Layer& layer : layers_)
        total += layer.param_count;
    return total;
}

double
NetworkModel::totalParamBytes() const
{
    return 4.0 * static_cast<double>(totalParams());
}

std::vector<double>
NetworkModel::layerParamBytes() const
{
    std::vector<double> bytes;
    bytes.reserve(layers_.size());
    for (const Layer& layer : layers_)
        bytes.push_back(layer.paramBytes());
    return bytes;
}

std::int64_t
NetworkModel::totalForwardFlopsPerSample() const
{
    std::int64_t total = 0;
    for (const Layer& layer : layers_)
        total += layer.forward_flops_per_sample;
    return total;
}

} // namespace dnn
} // namespace ccube
