# Empty compiler generated dependencies file for abl_ring_count.
# This may be replaced when dependencies are built.
