#include "core/trainer.h"

#include "util/logging.h"

namespace ccube {
namespace core {

TrainingRunResult
Trainer::run(Mode mode, const IterationConfig& config,
             int iterations) const
{
    CCUBE_CHECK(iterations >= 1, "need at least one iteration");

    const IterationResult steady = scheduler_.run(mode, config);

    // Cold start: iteration 0 has no previous collective to chain
    // against, so its forward runs unchained; its backward and
    // AllReduce then feed iteration 1. The cold iteration costs
    // fwd + bwd; the collective's cost lands in the next period.
    const double cold = steady.forward_time + steady.backward_time;

    TrainingRunResult result;
    result.iterations = iterations;
    result.cold_start_time = cold;
    result.steady_iteration_time = steady.iteration_time;
    result.total_time =
        cold + static_cast<double>(iterations - 1) *
                   steady.iteration_time;

    const double samples_per_iteration =
        static_cast<double>(config.batch) *
        static_cast<double>(num_gpus_);
    result.samples_per_second =
        samples_per_iteration * static_cast<double>(iterations) /
        result.total_time;

    // Single-GPU baseline processes `batch` samples in fwd+bwd with
    // no communication at all.
    const double single_gpu_rate =
        static_cast<double>(config.batch) /
        (steady.forward_time + steady.backward_time);
    result.scaling_efficiency =
        result.samples_per_second /
        (single_gpu_rate * static_cast<double>(num_gpus_));
    return result;
}

} // namespace core
} // namespace ccube
