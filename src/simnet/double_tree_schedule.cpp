#include "simnet/double_tree_schedule.h"

#include "obs/monitor.h"
#include "util/logging.h"

namespace ccube {
namespace simnet {

ScheduleResult
runDoubleTreeSchedule(sim::Simulation& simulation, Network& network,
                      const topo::DoubleTreeEmbedding& embedding,
                      double total_bytes, PhaseMode mode,
                      int chunks_per_tree, LanePolicy lanes,
                      ccl::Protocol proto)
{
    CCUBE_CHECK(total_bytes > 0.0, "non-positive payload");
    CCUBE_CHECK(chunks_per_tree >= 1, "need at least one chunk per tree");

    const bool p2p = lanes == LanePolicy::kPointToPoint;
    const int t0_up = 0;
    const int t0_down = p2p ? 0 : 1;
    const int t1_up = p2p ? 1 : 0;
    const int t1_down = 1;
    TreeSchedule first(network, embedding.tree0, total_bytes / 2.0, mode,
                       chunks_per_tree, t0_up, t0_down);
    TreeSchedule second(network, embedding.tree1, total_bytes / 2.0, mode,
                        chunks_per_tree, t1_up, t1_down);
    first.setProtocol(proto);
    second.setProtocol(proto);
    const double at = simulation.now();
    first.start(at);
    second.start(at);
    simulation.run();

    ScheduleResult merged = first.result();
    merged.merge(second.result());

    obs::Monitor& monitor = obs::Monitor::global();
    if (monitor.enabled())
        monitor.collectiveComplete("allreduce.double_tree", at,
                                   merged.completion_time,
                                   total_bytes);
    return merged;
}

} // namespace simnet
} // namespace ccube
