#ifndef CCUBE_CCL_RING_ALLREDUCE_H_
#define CCUBE_CCL_RING_ALLREDUCE_H_

/**
 * @file
 * Functional ring AllReduce (the paper's baseline R).
 *
 * Classic two-phase ring: P−1 Reduce-Scatter steps followed by P−1
 * AllGather steps, with the message split into P chunks (paper
 * Fig. 5(b)). Chunks complete out of order across ranks — the reason
 * gradient queuing cannot chain a ring collective with computation.
 */

#include "ccl/allreduce.h"
#include "ccl/communicator.h"
#include "topo/ring_embedding.h"

namespace ccube {
namespace ccl {

/**
 * Runs ring AllReduce over @p buffers (one per rank, equal length).
 * On return every buffer holds the elementwise sum. @p ring gives the
 * logical rank order; buffers are indexed by rank id. @p proto picks
 * the mailbox wire protocol (LL or Simple) for every hop. @p resume
 * skips chunks already final at every rank (a supervised retry; see
 * ccl::ChunkCheckpoint) — ids are the ring's own chunk ids 0..P-1.
 */
AllReduceTrace ringAllReduce(Communicator& comm, RankBuffers& buffers,
                             const topo::RingEmbedding& ring,
                             AllReduceTrace::Observer observer = {},
                             Protocol proto = Protocol::kSimple,
                             const SkipMask& resume = {});

} // namespace ccl
} // namespace ccube

#endif // CCUBE_CCL_RING_ALLREDUCE_H_
