#include "obs/report.h"

#include <algorithm>
#include <cstdlib>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/analyze.h"
#include "obs/metrics.h"

namespace ccube {
namespace obs {

namespace {

void
rule(std::ostream& out, const char* title)
{
    out << "\n--- " << title << " ---\n";
}

std::string
fmtBytes(double bytes)
{
    const char* unit = "B";
    double value = bytes;
    if (value >= 1e9) {
        value /= 1e9;
        unit = "GB";
    } else if (value >= 1e6) {
        value /= 1e6;
        unit = "MB";
    } else if (value >= 1e3) {
        value /= 1e3;
        unit = "KB";
    }
    std::ostringstream s;
    s << std::fixed << std::setprecision(value < 10 ? 2 : 1) << value
      << unit;
    return s.str();
}

void
writeBreakdownRow(std::ostream& out, const char* label, double us,
                  double total_us)
{
    out << "  " << std::left << std::setw(14) << label << std::right
        << std::setw(12) << std::fixed << std::setprecision(2) << us
        << " us";
    if (total_us > 0.0) {
        out << "  (" << std::setw(5) << std::setprecision(1)
            << 100.0 * us / total_us << "%)";
    }
    out << "\n";
}

} // namespace

void
writeAnalysisReport(std::ostream& out, const TraceAnalyzer& analyzer,
                    const MetricRegistry* registry,
                    const ReportOptions& options)
{
    const TimeInterval window = analyzer.channelWindow();

    out << "=== ccube trace analysis ===\n";
    if (registry != nullptr &&
        registry->counter("trace.dropped_events") > 0.0) {
        out << "WARNING: trace truncated ("
            << static_cast<long>(
                   registry->counter("trace.dropped_events"))
            << " events dropped), analysis may be partial\n";
    }
    out << "events: " << analyzer.events().size()
        << "  channels: " << analyzer.channels().size()
        << "  transfers: " << analyzer.transfers().size() << "\n";
    out << std::fixed << std::setprecision(2);
    out << "channel window: [" << window.start_us << ", "
        << window.end_us << "] us  (span " << window.durationUs()
        << " us)\n";

    // --- Channel utilization table. ---------------------------------
    rule(out, "channel utilization");
    if (analyzer.channels().empty()) {
        out << "(no channel traffic recorded)\n";
    } else {
        out << std::right << std::setw(5) << "chan" << std::setw(6)
            << "pid" << std::setw(7) << "xfers" << std::setw(10)
            << "bytes" << std::setw(12) << "busy_us" << std::setw(8)
            << "util%" << std::setw(8) << "idle%" << std::setw(14)
            << "max_idle_us" << "  name\n";
        int rows = 0;
        for (const ChannelTimeline& channel : analyzer.channels()) {
            if (rows++ >= options.max_channels) {
                out << "  ... "
                    << analyzer.channels().size() - options.max_channels
                    << " more channels elided\n";
                break;
            }
            const auto gaps =
                channel.idleIntervals(window, options.min_idle_gap_us);
            double max_gap = 0.0;
            for (const TimeInterval& gap : gaps)
                max_gap = std::max(max_gap, gap.durationUs());
            out << std::setw(5) << channel.channel << std::setw(6)
                << channel.pid << std::setw(7) << channel.transfers
                << std::setw(10) << fmtBytes(channel.bytes)
                << std::setw(12) << std::setprecision(2)
                << channel.busy_us << std::setw(7)
                << std::setprecision(1)
                << 100.0 * channel.utilization(window) << "%"
                << std::setw(7)
                << 100.0 * channel.idleFraction(window) << "%"
                << std::setw(14) << std::setprecision(2) << max_gap
                << "  " << channel.name << "\n";
        }
    }

    // --- α-β fit. ---------------------------------------------------
    rule(out, "alpha-beta fit (occupancy = alpha + beta * bytes)");
    const AlphaBetaFit fit = analyzer.fitAlphaBeta();
    if (!fit.valid) {
        out << "(not enough distinct transfer sizes: " << fit.samples
            << " samples)\n";
    } else {
        out << "samples: " << fit.samples << "  r2: "
            << std::setprecision(4) << fit.r2 << "\n";
        out << "alpha: " << std::scientific << std::setprecision(3)
            << fit.alpha_s << " s  beta: " << fit.beta_s_per_byte
            << " s/B  (bandwidth " << std::fixed
            << std::setprecision(2) << fit.bandwidth() / 1e9
            << " GB/s)\n";
        if (options.reference) {
            out << "reference alpha: " << std::scientific
                << std::setprecision(3) << options.reference->alpha
                << " s  (rel err " << std::fixed
                << std::setprecision(1)
                << 100.0 * fit.alphaRelError(*options.reference)
                << "%)\n";
            out << "reference beta:  " << std::scientific
                << std::setprecision(3) << options.reference->beta
                << " s/B  (rel err " << std::fixed
                << std::setprecision(1)
                << 100.0 * fit.betaRelError(*options.reference)
                << "%)\n";
        }
    }

    // --- Critical path. ---------------------------------------------
    rule(out, "critical path");
    const CriticalPath path = analyzer.criticalPath(
        fit.valid ? fit.alpha_s * 1e6 : 0.0);
    if (path.empty()) {
        out << "(no spans)\n";
    } else {
        out << std::fixed << std::setprecision(2);
        out << "steps: " << path.steps.size() << "  span: "
            << path.spanUs() << " us  busy: " << path.busy_us
            << " us\n";
        const double total = path.breakdown.totalUs();
        writeBreakdownRow(out, "startup", path.breakdown.startup_us,
                          total);
        writeBreakdownRow(out, "serialization",
                          path.breakdown.serialization_us, total);
        writeBreakdownRow(out, "sync_stall",
                          path.breakdown.sync_stall_us, total);
        writeBreakdownRow(out, "reduction",
                          path.breakdown.reduction_us, total);
        writeBreakdownRow(out, "other", path.breakdown.other_us,
                          total);
        out << "steps (first " << options.max_steps << "):\n";
        out << std::right << std::setw(5) << "#" << std::setw(15)
            << "kind" << std::setw(12) << "ts_us" << std::setw(12)
            << "dur_us" << std::setw(12) << "stall_us"
            << "  pid/tid  name\n";
        int rows = 0;
        for (const PathStep& step : path.steps) {
            if (rows >= options.max_steps) {
                out << "  ... "
                    << path.steps.size() -
                           static_cast<std::size_t>(options.max_steps)
                    << " more steps elided\n";
                break;
            }
            out << std::setw(5) << rows++ << std::setw(15)
                << costKindName(step.kind) << std::setw(12)
                << std::setprecision(2) << step.span.ts_us
                << std::setw(12) << step.span.dur_us << std::setw(12)
                << step.stall_before_us << "  " << step.span.pid << "/"
                << step.span.tid << "  " << step.span.name << "\n";
        }
    }

    // --- Per-rank ccl counters. --------------------------------------
    // RankCounters::exportTo lands `ccl.rank<r>.<field>` counters in
    // the registry; surface the synchronization-critical ones as one
    // row per rank (the sm_* columns are the state-machine runtime's
    // park/resume/steal activity, invisible in the flat dump).
    if (registry) {
        std::vector<int> ranks;
        for (const auto& [name, kind] : registry->names()) {
            if (kind != "counter" ||
                name.rfind("ccl.rank", 0) != 0)
                continue;
            const std::size_t dot = name.find('.', 8);
            if (dot == std::string::npos)
                continue;
            const int rank = std::atoi(name.substr(8, dot - 8).c_str());
            if (ranks.empty() || ranks.back() != rank)
                ranks.push_back(rank);
        }
        std::sort(ranks.begin(), ranks.end());
        ranks.erase(std::unique(ranks.begin(), ranks.end()),
                    ranks.end());
        if (!ranks.empty()) {
            rule(out, "per-rank ccl counters");
            out << std::right << std::setw(5) << "rank"
                << std::setw(12) << "cas_retry" << std::setw(14)
                << "post_stall_ns" << std::setw(14) << "wait_stall_ns"
                << std::setw(12) << "ll_spin_ns" << std::setw(10)
                << "sm_parks" << std::setw(12) << "sm_resumes"
                << std::setw(11) << "sm_steals" << "\n";
            const auto cell = [&](int rank, const char* field) {
                return static_cast<long long>(registry->counter(
                    "ccl.rank" + std::to_string(rank) + "." + field));
            };
            for (const int rank : ranks) {
                out << std::setw(5) << rank << std::setw(12)
                    << cell(rank, "cas_retries") << std::setw(14)
                    << cell(rank, "post_stall_ns") << std::setw(14)
                    << cell(rank, "wait_stall_ns") << std::setw(12)
                    << cell(rank, "ll_spin_ns") << std::setw(10)
                    << cell(rank, "sm_parks") << std::setw(12)
                    << cell(rank, "sm_resumes") << std::setw(11)
                    << cell(rank, "sm_steals") << "\n";
            }
        }
    }

    // --- Metrics. ---------------------------------------------------
    if (registry) {
        rule(out, "metrics");
        const auto names = registry->names();
        if (names.empty())
            out << "(registry empty)\n";
        for (const auto& [name, kind] : names) {
            out << "  " << std::left << std::setw(40) << name
                << std::right << " ";
            if (kind == "counter") {
                out << registry->counter(name);
            } else if (kind == "gauge") {
                out << registry->gauge(name);
            } else {
                const util::RunningStats stats =
                    registry->histogram(name);
                out << "count=" << stats.count()
                    << " mean=" << stats.mean() << " max="
                    << stats.max();
            }
            out << "\n";
        }
    }
    out.flush();
}

} // namespace obs
} // namespace ccube
