#ifndef CCUBE_CORE_CHUNK_MAPPER_H_
#define CCUBE_CORE_CHUNK_MAPPER_H_

/**
 * @file
 * Maps gradient buffer bytes ↔ collective chunks ↔ layers.
 *
 * C-Cube introduces no extra partitioning: it reuses the chunks the
 * collective already pipelines (paper §III-D). This mapper knows the
 * chunk layout of each collective (single tree, double tree with its
 * half-split, ring with P slices) and answers, for a layer occupying
 * a byte range of the one-shot buffer, which chunks gate it — the
 * Layer-Chunk Table of Fig. 9 is derived from it.
 */

#include <cstdint>
#include <utility>
#include <vector>

namespace ccube {
namespace core {

/**
 * Chunk layout of one collective over a gradient buffer.
 */
class ChunkMapper
{
  public:
    /** Single tree: @p num_chunks uniform chunks over the buffer. */
    static ChunkMapper singleTree(double total_bytes, int num_chunks);

    /**
     * Double tree: the buffer is halved; tree 0's chunks
     * [0, chunks_per_tree) cover the lower half, tree 1's chunks
     * [chunks_per_tree, 2×chunks_per_tree) the upper half.
     */
    static ChunkMapper doubleTree(double total_bytes,
                                  int chunks_per_tree);

    /** Ring: P slices, slice k owned by ring position k. */
    static ChunkMapper ring(double total_bytes, int num_ranks);

    /** Number of global chunks. */
    int numChunks() const
    {
        return static_cast<int>(ranges_.size());
    }

    /** Byte range [lo, hi) of chunk @p chunk. */
    std::pair<double, double> chunkByteRange(int chunk) const;

    /**
     * Chunks whose byte range intersects [@p lo, @p hi). Layers with
     * zero bytes return an empty set.
     */
    std::vector<int> chunksOfRange(double lo, double hi) const;

    /**
     * Chunks gating layer @p layer given per-layer buffer bytes in
     * forward order (the buffer layout of Fig. 8).
     */
    std::vector<int>
    chunksOfLayer(const std::vector<double>& layer_bytes,
                  int layer) const;

    /**
     * Time layer @p layer is fully reduced, given per-chunk ready
     * times: max over its gating chunks; layers with no parameters are
     * ready immediately (time 0).
     */
    double layerReadyTime(const std::vector<double>& layer_bytes,
                          int layer,
                          const std::vector<double>& chunk_ready) const;

    /**
     * The Layer-Chunk Table of Fig. 9 for a *single-tree* layout: per
     * layer, the cumulative chunk count up to its last chunk. Only
     * valid for layouts whose chunks are delivered in global order.
     */
    std::vector<std::int64_t>
    layerChunkTable(const std::vector<double>& layer_bytes) const;

  private:
    explicit ChunkMapper(
        std::vector<std::pair<double, double>> ranges);

    std::vector<std::pair<double, double>> ranges_;
};

/**
 * Per-tree Layer-Chunk Tables for the double-tree layout: for each
 * layer, the cumulative count of that tree's chunks (tree-local ids)
 * required before the layer may dequeue — the input to
 * DualGradientQueue.
 */
std::pair<std::vector<std::int64_t>, std::vector<std::int64_t>>
perTreeLayerChunkTables(double total_bytes, int chunks_per_tree,
                        const std::vector<double>& layer_bytes);

} // namespace core
} // namespace ccube

#endif // CCUBE_CORE_CHUNK_MAPPER_H_
