#ifndef CCUBE_SIM_EVENT_QUEUE_H_
#define CCUBE_SIM_EVENT_QUEUE_H_

/**
 * @file
 * Discrete-event queue: the heart of the timed network simulator.
 *
 * Events are (time, priority, sequence) ordered; the sequence number
 * makes simultaneous events deterministic (FIFO among equal keys),
 * which the collective schedules rely on for reproducible timelines.
 */

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace ccube {
namespace sim {

/** Simulated time in seconds. */
using Time = double;

/** Callback executed when an event fires. */
using EventFn = std::function<void()>;

/**
 * Priority queue of timestamped events with deterministic tie-breaking.
 */
class EventQueue
{
  public:
    /** Schedules @p fn at absolute time @p when (>= current time). */
    void schedule(Time when, EventFn fn, int priority = 0);

    /** True when no events remain. */
    bool empty() const { return heap_.empty(); }

    /** Number of pending events. */
    std::size_t size() const { return heap_.size(); }

    /** Current simulated time (time of the last executed event). */
    Time now() const { return now_; }

    /**
     * Executes the earliest pending event.
     * @return false when the queue was empty.
     */
    bool step();

    /** Runs until the queue drains; returns the final time. */
    Time run();

    /**
     * Runs until simulated time would exceed @p deadline; events at
     * exactly @p deadline still execute. Returns the final time.
     */
    Time runUntil(Time deadline);

    /** Total events executed since construction. */
    std::uint64_t executedCount() const { return executed_; }

    /** Drops all pending events and resets the clock to zero. */
    void reset();

  private:
    struct Entry {
        Time when;
        int priority;
        std::uint64_t seq;
        EventFn fn;
    };

    struct Later {
        bool
        operator()(const Entry& a, const Entry& b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    Time now_ = 0.0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace sim
} // namespace ccube

#endif // CCUBE_SIM_EVENT_QUEUE_H_
