#include "model/iteration_model.h"

#include <algorithm>

#include "model/overlapped_tree_model.h"
#include "model/ring_model.h"
#include "model/tree_model.h"
#include "util/logging.h"

namespace ccube {
namespace model {

IterationModel::IterationModel(IterationModelParams params)
    : params_(params)
{
    CCUBE_CHECK(params.num_gpus >= 2, "need at least two GPUs");
    CCUBE_CHECK(params.ring_count >= 1, "need at least one ring");
    CCUBE_CHECK(params.bandwidth_scale > 0.0,
                "bandwidth scale must be positive");
}

AlphaBeta
IterationModel::scaledLink() const
{
    AlphaBeta link = params_.link;
    link.beta /= params_.bandwidth_scale;
    return link;
}

double
IterationModel::commTime(ModeledMode mode, double bytes) const
{
    const AlphaBeta link = scaledLink();
    const int p = params_.num_gpus;
    switch (mode) {
      case ModeledMode::kBaseline:
        // Each tree of the double tree carries half, in parallel.
        return TreeModel(link).allReduceTime(p, bytes / 2.0);
      case ModeledMode::kOverlappedTree:
      case ModeledMode::kCCube:
        return OverlappedTreeModel(link).allReduceTime(p, bytes / 2.0);
      case ModeledMode::kRing:
        // Striped across ring_count channel-disjoint rings.
        return RingModel(link).allReduceTime(
            p, bytes / params_.ring_count);
    }
    util::panic("unknown modeled mode");
}

double
IterationModel::turnaroundTime(ModeledMode mode, double bytes) const
{
    const AlphaBeta link = scaledLink();
    const int p = params_.num_gpus;
    const TreeModel tree(link);
    const int k = tree.optimalChunksInt(p, bytes / 2.0);
    switch (mode) {
      case ModeledMode::kBaseline:
        return tree.turnaroundTime(p, bytes / 2.0, k);
      case ModeledMode::kOverlappedTree:
      case ModeledMode::kCCube:
        return OverlappedTreeModel(link).turnaroundTime(
            p, bytes / 2.0, k);
      case ModeledMode::kRing:
        return commTime(mode, bytes);
    }
    util::panic("unknown modeled mode");
}

double
IterationModel::iterationTime(ModeledMode mode,
                              const dnn::NetworkModel& network,
                              int batch) const
{
    const dnn::ComputeModel compute(params_.gpu);
    const std::vector<double> fwd =
        compute.layerForwardTimes(network, batch);
    double fwd_total = 0.0;
    for (double f : fwd)
        fwd_total += f;
    const double bwd = compute.backwardTime(network, batch);
    const double bytes = network.totalParamBytes();
    const double comm = commTime(mode, bytes);

    if (mode != ModeledMode::kCCube)
        return bwd + comm + fwd_total;

    // Chained: layer L's gradients arrive at
    //   ready(q_L) = turnaround + q_L (comm − turnaround)
    // with q_L the byte-prefix fraction through layer L. The chain end
    // is max over L of ready(q_L) + Σ_{j≥L} fwd_j (plus bwd).
    const double turnaround = turnaroundTime(mode, bytes);
    const std::vector<double> layer_bytes = network.layerParamBytes();
    double suffix = fwd_total;
    double prefix_bytes = 0.0;
    double end = fwd_total; // L = 0 with ready 0 lower bound
    for (int l = 0; l < network.numLayers(); ++l) {
        prefix_bytes += layer_bytes[static_cast<std::size_t>(l)];
        const double q = prefix_bytes / bytes;
        const double ready = turnaround + q * (comm - turnaround);
        end = std::max(end, ready + suffix);
        suffix -= fwd[static_cast<std::size_t>(l)];
    }
    return bwd + end;
}

double
IterationModel::normalizedPerf(ModeledMode mode,
                               const dnn::NetworkModel& network,
                               int batch) const
{
    const dnn::ComputeModel compute(params_.gpu);
    const double ideal = compute.forwardTime(network, batch) +
                         compute.backwardTime(network, batch);
    return ideal / iterationTime(mode, network, batch);
}

} // namespace model
} // namespace ccube
