#ifndef CCUBE_SIM_RESOURCE_H_
#define CCUBE_SIM_RESOURCE_H_

/**
 * @file
 * FIFO-serialized resource for the discrete-event simulator.
 *
 * A unidirectional network channel is the canonical instance: at most
 * one transfer occupies it at a time and waiters are served in request
 * order. Invariant #6 in DESIGN.md is enforced here.
 */

#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "sim/simulation.h"
#include "util/inline_function.h"
#include "util/stats.h"

namespace ccube {

namespace obs {
class MetricRegistry;
class Monitor;
class TraceRecorder;
}

namespace sim {

/**
 * A resource with unit capacity and FIFO admission.
 *
 * Usage: call request() with a function that returns the busy duration;
 * the resource runs it when granted and frees itself that much later.
 * An optional completion callback fires when the occupancy ends.
 */
class FifoResource
{
  public:
    /** Computes the occupancy duration, called at grant time.
     *  Move-only small-buffer callable (see sim::EventFn). */
    using HoldFn = util::InlineFunction<Time()>;

    /** Invoked when the occupancy ends (resource freed). */
    using DoneFn = EventFn;

    /** Creates a resource bound to @p simulation with a debug name. */
    FifoResource(Simulation& simulation, std::string name);

    FifoResource(const FifoResource&) = delete;
    FifoResource& operator=(const FifoResource&) = delete;

    /**
     * Requests the resource. When granted, @p hold is evaluated to get
     * the busy duration; @p done fires when the busy period elapses.
     * @p payload (bytes, or any workload measure) is recorded for
     * telemetry and attached to the occupancy trace span.
     */
    void request(HoldFn hold, DoneFn done, double payload = 0.0);

    /**
     * Binds this resource to a (pid, tid) identity in the global
     * obs::TraceRecorder; every grant then emits one complete span
     * (simulated time) named after the resource, with queue-wait and
     * payload args. Without an identity the resource never traces.
     */
    void setTraceIdentity(int pid, int tid);

    /** True while a grant is outstanding. */
    bool busy() const { return busy_; }

    /** Number of queued (not yet granted) requests. */
    std::size_t queueLength() const { return waiting_.size(); }

    /** Cumulative busy time, for utilization reporting. */
    Time busyTime() const { return busy_time_; }

    /** Total grants made. */
    std::uint64_t grants() const { return grants_; }

    /** Cumulative payload (bytes) moved through this resource.
     *  Accumulated only while tracing or a metrics capture is enabled
     *  — the unobserved fast path skips all telemetry. */
    double totalPayload() const { return total_payload_; }

    /** Queue-wait samples: time between request and grant. Captured
     *  only while tracing or a metrics capture is enabled. */
    const util::RunningStats& queueWaitStats() const
    {
        return queue_wait_;
    }

    /** Cap on retained busy intervals; later grants only add to
     *  busyTime(), so utilization stays exact while memory stays
     *  bounded. */
    static constexpr std::size_t kMaxBusyIntervals = 1u << 16;

    /**
     * Per-grant busy intervals [start, end] in simulated seconds,
     * grant order. Captured only while tracing or a metrics capture
     * is enabled, and capped at kMaxBusyIntervals (the overflow is
     * counted in busyIntervalsDropped()). This is the ground truth the
     * trace-derived obs::ChannelTimeline is cross-checked against.
     */
    const std::vector<std::pair<Time, Time>>& busyIntervals() const
    {
        return busy_intervals_;
    }

    /** Busy intervals lost to the kMaxBusyIntervals cap. */
    std::uint64_t busyIntervalsDropped() const
    {
        return busy_intervals_dropped_;
    }

    /** Debug name. */
    const std::string& name() const { return name_; }

  private:
    struct Pending {
        HoldFn hold;
        DoneFn done;
        double payload = 0.0;
        Time requested_at = 0.0;
    };

    void grant(Pending pending);
    void release();

    Simulation& sim_;
    std::string name_;
    bool busy_ = false;
    DoneFn active_done_; ///< completion callback of the current grant;
                         ///< stashed here so the scheduled release
                         ///< event captures only `this` (inline-sized)
    std::deque<Pending> waiting_;
    Time busy_time_ = 0.0;
    std::uint64_t grants_ = 0;
    double total_payload_ = 0.0;
    util::RunningStats queue_wait_;
    std::vector<std::pair<Time, Time>> busy_intervals_;
    std::uint64_t busy_intervals_dropped_ = 0;
    obs::TraceRecorder& recorder_; ///< cached globals: the per-grant
    obs::MetricRegistry& registry_; ///< cost is three relaxed loads
    obs::Monitor& monitor_;
    int trace_pid_ = -1;
    int trace_tid_ = 0;
};

} // namespace sim
} // namespace ccube

#endif // CCUBE_SIM_RESOURCE_H_
