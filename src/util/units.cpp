#include "util/units.h"

#include <cmath>
#include <cstdio>

namespace ccube {
namespace util {

namespace {

std::string
format(double value, const char* suffix)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f %s", value, suffix);
    return buf;
}

} // namespace

std::string
formatBytes(double bytes)
{
    if (bytes >= kGiB)
        return format(bytes / kGiB, "GiB");
    if (bytes >= kMiB)
        return format(bytes / kMiB, "MiB");
    if (bytes >= kKiB)
        return format(bytes / kKiB, "KiB");
    return format(bytes, "B");
}

std::string
formatSeconds(double seconds)
{
    const double abs = std::fabs(seconds);
    if (abs >= 1.0)
        return format(seconds, "s");
    if (abs >= 1e-3)
        return format(seconds * 1e3, "ms");
    if (abs >= 1e-6)
        return format(seconds * 1e6, "us");
    return format(seconds * 1e9, "ns");
}

std::string
formatBandwidth(double bytes_per_second)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.2f GB/s", bytes_per_second / 1e9);
    return buf;
}

} // namespace util
} // namespace ccube
