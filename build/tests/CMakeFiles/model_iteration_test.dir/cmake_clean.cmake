file(REMOVE_RECURSE
  "CMakeFiles/model_iteration_test.dir/model_iteration_test.cpp.o"
  "CMakeFiles/model_iteration_test.dir/model_iteration_test.cpp.o.d"
  "model_iteration_test"
  "model_iteration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_iteration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
