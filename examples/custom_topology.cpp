/**
 * @file
 * Bring-your-own-machine: defines a custom 4-GPU physical topology,
 * embeds logical collectives onto it (ring + double tree with a
 * detour), validates the embedding with the conflict analyzer, and
 * times the algorithms — the workflow for porting C-Cube to a new
 * box.
 *
 * The custom box: 4 GPUs on a "square with one diagonal" — pairs
 * (0,1) (1,2) (2,3) (3,0) connected, (0,2) double-linked, (1,3)
 * missing (needs a detour).
 */

#include <iostream>

#include "simnet/channel.h"
#include "simnet/double_tree_schedule.h"
#include "simnet/ring_schedule.h"
#include "topo/detour_router.h"
#include "topo/double_tree.h"
#include "topo/ring_embedding.h"
#include "util/table.h"
#include "util/units.h"

int
main()
{
    using namespace ccube;

    // --- 1. Describe the physical machine. ---------------------------
    topo::Graph box("custom_box");
    for (int g = 0; g < 4; ++g)
        box.addNode("GPU" + std::to_string(g));
    const double bw = 25e9;
    const double alpha = 4.6e-6;
    box.addLink(0, 1, bw, alpha);
    box.addLink(1, 2, bw, alpha);
    box.addLink(2, 3, bw, alpha);
    box.addLink(3, 0, bw, alpha);
    box.addLink(0, 2, bw, alpha); // double diagonal
    box.addLink(0, 2, bw, alpha);

    std::cout << "Machine: 4 GPUs, " << box.channelCount()
              << " unidirectional channels; pair (1,3) not "
                 "connected.\n\n";

    // --- 2. Embed the logical topologies. ----------------------------
    const topo::RingEmbedding ring = topo::findHamiltonianRing(box, 4);
    std::cout << "Ring embedding: ";
    for (int i = 0; i < ring.size(); ++i)
        std::cout << ring.order[static_cast<std::size_t>(i)]
                  << (i + 1 < ring.size() ? " -> " : "\n");

    // First attempt: a natural pair of trees where tree 1 uses the
    // missing edge 1-3 (auto-detoured through GPU0). The analyzer
    // catches that the overlapped algorithm would contend — this is
    // the Fig. 10(a) problem on a custom box.
    topo::BinaryTree t0a(4);
    t0a.setRoot(0);
    t0a.addEdge(0, 1);
    t0a.addEdge(0, 2);
    t0a.addEdge(2, 3);
    topo::BinaryTree t1a(4);
    t1a.setRoot(2);
    t1a.addEdge(2, 0);
    t1a.addEdge(2, 1);
    t1a.addEdge(1, 3); // not physically adjacent → detour
    topo::DoubleTreeEmbedding naive(
        topo::embedTree(box, std::move(t0a)),
        topo::embedTree(box, std::move(t1a)));
    for (const topo::ForwardingRule& rule :
         topo::extractForwardingRules(naive)) {
        std::cout << "Naive trees — detour: GPU" << rule.transit
                  << " forwards GPU" << rule.upstream << " -> GPU"
                  << rule.downstream << " ("
                  << (rule.phase == topo::PhaseDirection::kReduction
                          ? "reduction"
                          : "broadcast")
                  << ")\n";
    }
    std::cout << "Naive trees conflict check: "
              << (topo::isConflictFree(box, naive)
                      ? "conflict-free"
                      : "CONFLICTS — overlap would contend")
              << "\n";

    // Second attempt (topology-aware, the C-Cube way): route both
    // trees so the only shared pair is the double diagonal (0,2) —
    // tree 0 uses {0-1, 0-2, 2-3}, tree 1 uses {2-1, 2-0, 0-3}.
    topo::BinaryTree t0(4);
    t0.setRoot(0);
    t0.addEdge(0, 1);
    t0.addEdge(0, 2);
    t0.addEdge(2, 3);
    topo::BinaryTree t1(4);
    t1.setRoot(2);
    t1.addEdge(2, 1);
    t1.addEdge(2, 0);
    t1.addEdge(0, 3);
    topo::DoubleTreeEmbedding dt(topo::embedTree(box, std::move(t0)),
                                 topo::embedTree(box, std::move(t1)));
    std::cout << "Topology-aware trees conflict check: "
              << (topo::isConflictFree(box, dt)
                      ? "conflict-free (the double diagonal absorbs "
                        "both trees)"
                      : "CONFLICTS")
              << "\n\n";

    // --- 3. Time the collectives on this machine. --------------------
    util::Table table({"algorithm", "64MB_completion_ms",
                       "bandwidth_GBps", "turnaround_ms"});
    const double bytes = util::mib(64);
    {
        sim::Simulation sim;
        simnet::Network net(sim, box);
        const auto r = simnet::runRingSchedule(sim, net, ring, bytes);
        table.addRow({"ring",
                      util::formatDouble(r.completion_time * 1e3, 3),
                      util::formatDouble(
                          r.effectiveBandwidth(bytes) / 1e9, 2),
                      util::formatDouble(r.turnaroundTime() * 1e3, 3)});
    }
    for (const auto& [name, mode] :
         {std::pair<const char*, simnet::PhaseMode>{
              "double tree (two-phase)",
              simnet::PhaseMode::kTwoPhase},
          std::pair<const char*, simnet::PhaseMode>{
              "double tree (overlapped)",
              simnet::PhaseMode::kOverlapped}}) {
        sim::Simulation sim;
        simnet::Network net(sim, box);
        const auto r = simnet::runDoubleTreeSchedule(sim, net, dt,
                                                     bytes, mode, 32);
        table.addRow({name,
                      util::formatDouble(r.completion_time * 1e3, 3),
                      util::formatDouble(
                          r.effectiveBandwidth(bytes) / 1e9, 2),
                      util::formatDouble(r.turnaroundTime() * 1e3, 3)});
    }
    table.print(std::cout);
    return 0;
}
