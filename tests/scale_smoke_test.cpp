/**
 * @file
 * P=512 functional smoke for the state-machine runtime — the headline
 * acceptance of the async rank-task engine: a double-tree AllReduce
 * with 512 logical ranks runs on a handful of pool threads and
 * produces byte-identical results to thread-per-rank mode.
 *
 * Labeled "scale" in tests/CMakeLists.txt; CI runs it in the Release
 * perf-gate job (`ctest -L scale`) where the thread-per-rank reference
 * leg (512+ OS threads) stays comfortably inside the timeout.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <thread>
#include <vector>

#include "ccl/communicator.h"
#include "ccl/fault.h"
#include "obs/profiler.h"
#include "ccl/double_tree_allreduce.h"
#include "ccl/executor.h"
#include "ccl/ring_allreduce.h"
#include "ccl/state_machine.h"
#include "topo/double_tree.h"
#include "topo/ring_embedding.h"
#include "topo/tree_embedding.h"
#include "util/rng.h"

namespace ccube {
namespace {

using ccl::RankExecutor;

constexpr int kRanks = 512;
constexpr int kElems = 64;
constexpr int kSlots = 4;
constexpr int kChunksPerTree = 2;

topo::DoubleTreeEmbedding
logicalDoubleTree(int ranks)
{
    return topo::DoubleTreeEmbedding(
        topo::directEmbedding(topo::BinaryTree::inorder(ranks)),
        topo::directEmbedding(
            topo::BinaryTree::inorder(ranks).mirrored()));
}

ccl::RankBuffers
seededBuffers(int ranks, int elems, std::uint64_t seed)
{
    util::Rng rng(seed);
    ccl::RankBuffers buffers(static_cast<std::size_t>(ranks));
    for (auto& b : buffers) {
        b.resize(static_cast<std::size_t>(elems));
        rng.fill(b, -1.0f, 1.0f);
    }
    return buffers;
}

TEST(ScaleSmoke, DoubleTreeP512ByteIdenticalToThreadPerRank)
{
    const topo::DoubleTreeEmbedding dt = logicalDoubleTree(kRanks);

    // Thread-per-rank reference: 512 rank threads (+ tree1 helpers).
    ccl::RankBuffers reference = seededBuffers(kRanks, kElems, 7);
    {
        ccl::Communicator comm(kRanks, kSlots,
                               RankExecutor::Mode::kPersistent);
        ccl::doubleTreeAllReduce(comm, reference, dt, kChunksPerTree,
                                 ccl::TreePhaseMode::kTwoPhase);
    }

    // Same collective on the state-machine pool.
    ccl::RankBuffers buffers = seededBuffers(kRanks, kElems, 7);
    {
        ccl::Communicator comm(kRanks, kSlots,
                               RankExecutor::Mode::kStateMachine);
        ccl::doubleTreeAllReduce(comm, buffers, dt, kChunksPerTree,
                                 ccl::TreePhaseMode::kTwoPhase);
    }

    for (int r = 0; r < kRanks; ++r) {
        const auto& got = buffers[static_cast<std::size_t>(r)];
        const auto& want = reference[static_cast<std::size_t>(r)];
        if (std::memcmp(got.data(), want.data(),
                        got.size() * sizeof(float)) != 0) {
            for (int i = 0; i < kElems; ++i)
                ASSERT_EQ(got[static_cast<std::size_t>(i)],
                          want[static_cast<std::size_t>(i)])
                    << "rank " << r << " elem " << i
                    << " diverges between engine modes";
        }
    }
}

TEST(ScaleSmoke, OverlappedDoubleTreeAndRingP512RunOnTheSharedPool)
{
    // Overlapped mode doubles the task count (separate reducer and
    // broadcaster pipelines per rank); run it and a 2(P−1)-step ring
    // purely on the state machine with exact integer sums — every
    // partial sum is an integer far below 2^24, so the expectation is
    // reduction-order independent, bit for bit.
    const topo::DoubleTreeEmbedding dt = logicalDoubleTree(kRanks);
    const topo::RingEmbedding ring = topo::makeSequentialRing(kRanks);

    auto makeBuffers = [](int elems) {
        ccl::RankBuffers buffers(kRanks);
        for (int r = 0; r < kRanks; ++r) {
            auto& b = buffers[static_cast<std::size_t>(r)];
            b.resize(static_cast<std::size_t>(elems));
            for (int i = 0; i < elems; ++i)
                b[static_cast<std::size_t>(i)] =
                    static_cast<float>((r * 7 + i * 13) % 17 - 8);
        }
        return buffers;
    };
    auto exactSums = [](int elems) {
        std::vector<float> expected(static_cast<std::size_t>(elems));
        for (int i = 0; i < elems; ++i) {
            long sum = 0;
            for (int r = 0; r < kRanks; ++r)
                sum += (r * 7 + i * 13) % 17 - 8;
            expected[static_cast<std::size_t>(i)] =
                static_cast<float>(sum);
        }
        return expected;
    };
    auto expectExact = [](const ccl::RankBuffers& buffers,
                          const std::vector<float>& expected,
                          const char* what) {
        for (std::size_t r = 0; r < buffers.size(); ++r)
            for (std::size_t i = 0; i < buffers[r].size(); ++i)
                ASSERT_EQ(buffers[r][i], expected[i])
                    << what << ": rank " << r << " elem " << i;
    };

    ccl::Communicator comm(kRanks, kSlots,
                           RankExecutor::Mode::kStateMachine);
    {
        ccl::RankBuffers buffers = makeBuffers(kElems);
        ccl::doubleTreeAllReduce(comm, buffers, dt, kChunksPerTree,
                                 ccl::TreePhaseMode::kOverlapped);
        expectExact(buffers, exactSums(kElems), "double tree");
    }
    {
        // The ring slices the buffer into P pieces, so it needs at
        // least one element per rank.
        ccl::RankBuffers buffers = makeBuffers(kRanks);
        ccl::ringAllReduce(comm, buffers, ring);
        expectExact(buffers, exactSums(kRanks), "ring");
    }

    // The acceptance bound: 512 functional ranks must not have grown
    // the pool past the "handful of threads" default.
    if (std::getenv("CCUBE_CCL_SM_WORKERS") == nullptr) {
        const int hw = static_cast<int>(
            std::thread::hardware_concurrency());
        const int bound = std::max(4, 2 * hw);
        EXPECT_LE(ccl::StateMachineEngine::shared().workerCount(),
                  bound);
    }
}

TEST(ScaleSmoke, WatchdogKillEmitsStallChainAtP512)
{
    // The ISSUE acceptance bar: at P=512 on the state machine, a
    // killed rank must yield a stall report whose wait-for chain
    // terminates at the injected rank — not just a blamed-rank guess.
    // A ring is used because its wait-for graph is a single path, so
    // the terminus assertion is exact. The profiler samples the whole
    // aborted run; CI harvests both artifacts via the env hooks below.
    using namespace std::chrono_literals;
    constexpr int kKilled = 17; // FaultInjector caps ranks at 64

    obs::Profiler& profiler = obs::Profiler::global();
    profiler.start(0.0); // default rate

    ccl::Communicator comm(kRanks, kSlots,
                           RankExecutor::Mode::kStateMachine);
    comm.setDeadline(2s);
    ccl::FaultInjector injector;
    ccl::FaultInjector::Fault fault;
    fault.rank = kKilled;
    fault.action = ccl::FaultInjector::Action::kKill;
    fault.at_op = 5;
    injector.arm(fault);
    comm.setFaultInjector(&injector);

    const topo::RingEmbedding ring = topo::makeSequentialRing(kRanks);
    ccl::RankBuffers buffers(kRanks);
    for (auto& b : buffers)
        b.assign(kRanks, 1.0f); // ring needs >= one elem per rank

    bool caught = false;
    std::string report;
    try {
        ccl::ringAllReduce(comm, buffers, ring);
    } catch (const ccl::CollectiveError& error) {
        caught = true;
        const ccl::CollectiveError::Info& info = error.info();
        EXPECT_EQ(info.failed_rank, kKilled);
        EXPECT_EQ(info.chain_terminus, kKilled) << info.stall_chain;
        EXPECT_FALSE(info.stall_chain.empty());
        EXPECT_NE(info.stall_chain.find("r17 killed"),
                  std::string::npos)
            << info.stall_chain;
        report = ccl::formatStallReport(info);
    }
    EXPECT_TRUE(caught) << "collective completed despite kill";
    comm.clearAbort();
    comm.setFaultInjector(nullptr);
    profiler.stop();

    if (const char* path = std::getenv("CCUBE_STALL_REPORT_OUT")) {
        std::ofstream out(path);
        out << report;
    }
    if (const char* path = std::getenv("CCUBE_PROFILE_OUT")) {
        std::ofstream out(path);
        profiler.writeCollapsed(out);
    }
}

} // namespace
} // namespace ccube
