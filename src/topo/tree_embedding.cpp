#include "topo/tree_embedding.h"

#include <algorithm>
#include <deque>
#include <functional>

#include "topo/detour_router.h"
#include "util/logging.h"

namespace ccube {
namespace topo {

BinaryTree::BinaryTree(int num_nodes)
    : parent_(static_cast<std::size_t>(num_nodes), kInvalidNode),
      children_(static_cast<std::size_t>(num_nodes))
{
    CCUBE_CHECK(num_nodes > 0, "tree needs at least one node");
}

BinaryTree
BinaryTree::inorder(int num_nodes)
{
    BinaryTree tree(num_nodes);
    // Recursive midpoint construction: the middle rank of a range is
    // the subtree root; halves become left/right subtrees.
    std::function<NodeId(int, int)> build = [&](int lo, int hi) -> NodeId {
        if (lo >= hi)
            return kInvalidNode;
        const int mid = lo + (hi - lo) / 2;
        const NodeId left = build(lo, mid);
        const NodeId right = build(mid + 1, hi);
        if (left != kInvalidNode)
            tree.addEdge(mid, left);
        if (right != kInvalidNode)
            tree.addEdge(mid, right);
        return mid;
    };
    tree.setRoot(build(0, num_nodes));
    return tree;
}

BinaryTree
BinaryTree::mirrored() const
{
    const int p = numNodes();
    auto map = [p](NodeId n) { return p - 1 - n; };
    BinaryTree out(p);
    out.setRoot(map(root_));
    for (const auto& [parent, child] : edges())
        out.addEdge(map(parent), map(child));
    return out;
}

BinaryTree
BinaryTree::shifted(int shift) const
{
    const int p = numNodes();
    auto map = [p, shift](NodeId n) {
        return static_cast<NodeId>(((n + shift) % p + p) % p);
    };
    BinaryTree out(p);
    out.setRoot(map(root_));
    for (const auto& [parent, child] : edges())
        out.addEdge(map(parent), map(child));
    return out;
}

void
BinaryTree::addEdge(NodeId parent, NodeId child)
{
    CCUBE_CHECK(parent >= 0 && parent < numNodes(), "bad parent " << parent);
    CCUBE_CHECK(child >= 0 && child < numNodes(), "bad child " << child);
    CCUBE_CHECK(parent_[static_cast<std::size_t>(child)] == kInvalidNode,
                "node " << child << " already has a parent");
    CCUBE_CHECK(children_[static_cast<std::size_t>(parent)].size() < 2,
                "node " << parent << " already has two children");
    parent_[static_cast<std::size_t>(child)] = parent;
    children_[static_cast<std::size_t>(parent)].push_back(child);
}

void
BinaryTree::setRoot(NodeId root)
{
    CCUBE_CHECK(root >= 0 && root < numNodes(), "bad root " << root);
    root_ = root;
}

NodeId
BinaryTree::parent(NodeId node) const
{
    CCUBE_CHECK(node >= 0 && node < numNodes(), "bad node " << node);
    return parent_[static_cast<std::size_t>(node)];
}

const std::vector<NodeId>&
BinaryTree::children(NodeId node) const
{
    CCUBE_CHECK(node >= 0 && node < numNodes(), "bad node " << node);
    return children_[static_cast<std::size_t>(node)];
}

int
BinaryTree::depthOf(NodeId node) const
{
    int depth = 0;
    for (NodeId n = node; n != root_; n = parent(n)) {
        CCUBE_CHECK(n != kInvalidNode, "node " << node << " detached");
        ++depth;
        CCUBE_CHECK(depth <= numNodes(), "cycle while walking to root");
    }
    return depth;
}

int
BinaryTree::height() const
{
    int max_depth = 0;
    for (NodeId n = 0; n < numNodes(); ++n)
        max_depth = std::max(max_depth, depthOf(n));
    return max_depth + 1;
}

std::vector<NodeId>
BinaryTree::leaves() const
{
    std::vector<NodeId> result;
    for (NodeId n = 0; n < numNodes(); ++n)
        if (children_[static_cast<std::size_t>(n)].empty())
            result.push_back(n);
    return result;
}

std::vector<NodeId>
BinaryTree::interior() const
{
    std::vector<NodeId> result;
    for (NodeId n = 0; n < numNodes(); ++n)
        if (!children_[static_cast<std::size_t>(n)].empty())
            result.push_back(n);
    return result;
}

std::vector<std::pair<NodeId, NodeId>>
BinaryTree::edges() const
{
    std::vector<std::pair<NodeId, NodeId>> result;
    for (NodeId n : bfsOrder())
        for (NodeId c : children_[static_cast<std::size_t>(n)])
            result.emplace_back(n, c);
    return result;
}

std::vector<NodeId>
BinaryTree::bfsOrder() const
{
    std::vector<NodeId> order;
    if (root_ == kInvalidNode)
        return order;
    std::deque<NodeId> frontier{root_};
    while (!frontier.empty()) {
        const NodeId n = frontier.front();
        frontier.pop_front();
        order.push_back(n);
        for (NodeId c : children_[static_cast<std::size_t>(n)])
            frontier.push_back(c);
    }
    return order;
}

bool
BinaryTree::valid() const
{
    if (root_ == kInvalidNode)
        return false;
    if (parent_[static_cast<std::size_t>(root_)] != kInvalidNode)
        return false;
    const auto order = bfsOrder();
    if (static_cast<int>(order.size()) != numNodes())
        return false;
    for (NodeId n = 0; n < numNodes(); ++n) {
        if (n != root_ && parent_[static_cast<std::size_t>(n)] ==
                              kInvalidNode) {
            return false;
        }
        if (children_[static_cast<std::size_t>(n)].size() > 2)
            return false;
    }
    return true;
}

std::vector<NodeId>
Route::transits() const
{
    if (hops.size() <= 2)
        return {};
    return std::vector<NodeId>(hops.begin() + 1, hops.end() - 1);
}

Route
Route::reversed() const
{
    Route out = *this;
    std::reverse(out.hops.begin(), out.hops.end());
    return out;
}

TreeEmbedding::TreeEmbedding(BinaryTree t)
    : tree(std::move(t)),
      forwarding_cache(std::make_shared<ForwardingRuleCache>())
{
}

const Route&
TreeEmbedding::routeToChild(NodeId child) const
{
    const auto all = tree.edges();
    for (std::size_t i = 0; i < all.size(); ++i)
        if (all[i].second == child)
            return routes[i];
    util::panic("no route to child — node is the root or unknown");
}

TreeEmbedding
embedTree(const Graph& graph, BinaryTree tree)
{
    CCUBE_CHECK(tree.valid(), "cannot embed an invalid tree");
    TreeEmbedding embedding(std::move(tree));
    for (const auto& [parent, child] : embedding.tree.edges()) {
        Route route;
        if (graph.hasChannel(parent, child)) {
            route.hops = {parent, child};
        } else {
            route.hops = graph.shortestPath(parent, child,
                                            LinkKind::kNvlink);
            CCUBE_CHECK(!route.hops.empty(),
                        "no NVLink path " << parent << " → " << child);
        }
        embedding.routes.push_back(std::move(route));
    }
    return embedding;
}

TreeEmbedding
directEmbedding(BinaryTree tree)
{
    CCUBE_CHECK(tree.valid(), "cannot embed an invalid tree");
    TreeEmbedding embedding(std::move(tree));
    for (const auto& [parent, child] : embedding.tree.edges())
        embedding.routes.push_back(Route{{parent, child}});
    return embedding;
}

} // namespace topo
} // namespace ccube
