#ifndef CCUBE_CORE_TIMELINE_H_
#define CCUBE_CORE_TIMELINE_H_

/**
 * @file
 * Iteration timeline reconstruction — the data behind Fig. 2/8-style
 * diagrams: when backward ran, when each collective chunk became
 * available, and when each chained forward layer executed.
 *
 * The timeline is recorded as spans into an obs::TraceRecorder (the
 * unified observability substrate), from which the CSV rows, the
 * ASCII Gantt view, and Chrome/Perfetto traces are all derived —
 * `TimelineBuilder::record` into the global recorder is how the
 * iteration phases land in a `--trace-out=` capture.
 */

#include <iosfwd>
#include <string>
#include <vector>

#include "core/iteration_scheduler.h"
#include "obs/trace.h"

namespace ccube {
namespace core {

/** One bar on the timeline. */
struct TimelineEvent {
    std::string track; ///< "backward" | "allreduce" | "forward"
    std::string label; ///< e.g. "chunk 12", "layer conv3_2"
    double start = 0.0;
    double end = 0.0;
};

/**
 * Builds the steady-state iteration timeline for one mode.
 */
class TimelineBuilder
{
  public:
    /** Trace tracks (tids) the iteration phases record under. */
    enum Track : int {
        kBackwardTrack = 0,
        kAllReduceTrack = 1,
        kForwardTrack = 2,
    };

    /**
     * Records the steady-state timeline of @p mode as complete spans
     * into @p recorder under @p pid (simulated time): backward
     * [0, bwd] on the backward track; one span per collective chunk
     * (start = previous chunk's availability, end = this chunk's) on
     * the allreduce track; one span per forward layer (chained modes
     * gate each layer on its gradients) on the forward track. No-op
     * when the recorder is disabled.
     */
    static void record(obs::TraceRecorder& recorder,
                       const IterationScheduler& scheduler, Mode mode,
                       const IterationConfig& config,
                       int pid = obs::pids::core());

    /**
     * Reconstructs the timeline as a flat event list (seconds) — the
     * recorder-derived view the CSV/ASCII renderers consume.
     */
    static std::vector<TimelineEvent>
    build(const IterationScheduler& scheduler, Mode mode,
          const IterationConfig& config);

    /** Writes "track,label,start,end" rows. */
    static void writeCsv(std::ostream& out,
                         const std::vector<TimelineEvent>& events);

    /**
     * Renders an ASCII Gantt chart: one row per track, @p width
     * character columns across the iteration.
     */
    static void printAscii(std::ostream& out,
                           const std::vector<TimelineEvent>& events,
                           int width = 72);
};

} // namespace core
} // namespace ccube

#endif // CCUBE_CORE_TIMELINE_H_
