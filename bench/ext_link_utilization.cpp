/**
 * @file
 * Extension: per-channel utilization of the DGX-1 during AllReduce —
 * making Observation #2 visible. During the baseline's reduction
 * phase the tree's "downlinks" sit idle (and vice versa during
 * broadcast), so no channel can exceed ~50% utilization; the
 * overlapped algorithm drives both directions at once.
 */

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/session.h"
#include "simnet/channel.h"
#include "simnet/double_tree_schedule.h"
#include "topo/dgx1.h"
#include "topo/double_tree.h"
#include "util/flags.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/units.h"

namespace {

using namespace ccube;

struct Utilization {
    double completion;
    util::RunningStats used_channels; ///< utilization of busy channels
    double max_utilization;
};

Utilization
measure(simnet::PhaseMode mode, const std::string& metric_prefix)
{
    const topo::Graph graph = topo::makeDgx1();
    const auto dt = topo::makeDgx1DoubleTree(graph);
    sim::Simulation sim;
    simnet::Network net(sim, graph);
    const auto result = simnet::runDoubleTreeSchedule(
        sim, net, dt, util::mib(64), mode, 32);

    Utilization u{result.completion_time, {}, 0.0};
    for (int id = 0; id < graph.channelCount(); ++id) {
        const double busy = net.channelBusyTime(id);
        if (busy <= 0.0)
            continue; // channel unused by the embedding
        const double utilization = busy / result.completion_time;
        u.used_channels.add(utilization);
        u.max_utilization = std::max(u.max_utilization, utilization);
    }
    net.closeTraceEpoch(result.completion_time);
    obs::MetricRegistry& registry = obs::MetricRegistry::global();
    if (registry.enabled())
        net.exportMetrics(registry, result.completion_time,
                          metric_prefix);
    return u;
}

} // namespace

int
main(int argc, char** argv)
{
    const util::Flags flags(argc, argv);
    obs::ObsSession obs_session(flags);


    std::cout << "=== Extension: NVLink channel utilization, "
                 "baseline vs overlapped double tree "
                 "(DGX-1, 64 MiB) ===\n\n";

    const Utilization base =
        measure(simnet::PhaseMode::kTwoPhase, "simnet.B");
    const Utilization over =
        measure(simnet::PhaseMode::kOverlapped, "simnet.C1");

    util::Table table({"algorithm", "completion_ms", "busy_channels",
                       "mean_utilization", "max_utilization"});
    table.addRow(
        {"B (two-phase)", util::formatDouble(base.completion * 1e3, 3),
         std::to_string(base.used_channels.count()),
         util::formatDouble(base.used_channels.mean(), 3),
         util::formatDouble(base.max_utilization, 3)});
    table.addRow(
        {"C1 (overlapped)",
         util::formatDouble(over.completion * 1e3, 3),
         std::to_string(over.used_channels.count()),
         util::formatDouble(over.used_channels.mean(), 3),
         util::formatDouble(over.max_utilization, 3)});
    table.print(std::cout);

    std::cout
        << "\nObservation #2 made visible: in the two-phase baseline "
           "a channel works in only one of the two phases, capping "
           "its utilization near 50%; the overlapped algorithm's "
           "bottleneck channels approach full utilization — the same "
           "channels finish the same bytes almost twice as fast.\n";
    obs_session.finish();
    return 0;
}
