#ifndef CCUBE_UTIL_UNITS_H_
#define CCUBE_UTIL_UNITS_H_

/**
 * @file
 * Strongly named unit helpers for bytes, seconds, and bandwidth.
 *
 * The α-β cost model (§II-C of the paper) mixes latencies in
 * microseconds, sizes in MB, and bandwidths in GB/s; these helpers keep
 * the arithmetic in base SI units (bytes, seconds, bytes/second) and
 * provide readable constructors and formatters.
 */

#include <cstdint>
#include <string>

namespace ccube {
namespace util {

/** Number of bytes in one kibibyte. */
inline constexpr double kKiB = 1024.0;
/** Number of bytes in one mebibyte. */
inline constexpr double kMiB = 1024.0 * 1024.0;
/** Number of bytes in one gibibyte. */
inline constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

/** Converts kibibytes to bytes. */
constexpr double kib(double v) { return v * kKiB; }
/** Converts mebibytes to bytes. */
constexpr double mib(double v) { return v * kMiB; }
/** Converts gibibytes to bytes. */
constexpr double gib(double v) { return v * kGiB; }

/** Converts microseconds to seconds. */
constexpr double usec(double v) { return v * 1e-6; }
/** Converts milliseconds to seconds. */
constexpr double msec(double v) { return v * 1e-3; }

/** Converts GB/s (decimal, as vendors quote NVLink) to bytes/second. */
constexpr double gbps(double v) { return v * 1e9; }

/** Formats a byte count with a binary suffix, e.g. "64.0 MiB". */
std::string formatBytes(double bytes);

/** Formats a duration with an appropriate suffix, e.g. "12.3 us". */
std::string formatSeconds(double seconds);

/** Formats a bandwidth in GB/s with 2 decimals, e.g. "23.41 GB/s". */
std::string formatBandwidth(double bytes_per_second);

} // namespace util
} // namespace ccube

#endif // CCUBE_UTIL_UNITS_H_
