#include "ccl/sync_primitives.h"

#include <cstdint>

#include "ccl/fault.h"
#include "obs/context.h"
#include "util/logging.h"
#include "util/spin_wait.h"

namespace ccube {
namespace ccl {

namespace {

using SteadyClock = std::chrono::steady_clock;

/**
 * Stall-time bookkeeping for the semaphore slow paths: the first
 * blocked iteration timestamps; destruction reports elapsed wall time
 * to the per-rank counters. One steady_clock read per end, only ever
 * on an already-slow path.
 */
class StallTimer
{
  public:
    enum class Kind { kPost, kWait };

    explicit StallTimer(Kind kind)
        : kind_(kind), start_(SteadyClock::now())
    {
    }

    ~StallTimer()
    {
        const std::uint64_t ns = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                SteadyClock::now() - start_)
                .count());
        if (ns == 0)
            return;
        obs::RankCounters& counters = obs::RankCounters::global();
        if (kind_ == Kind::kPost)
            counters.addPostStallNs(ns);
        else
            counters.addWaitStallNs(ns);
    }

    bool expired(std::chrono::nanoseconds timeout) const
    {
        return SteadyClock::now() - start_ >= timeout;
    }

  private:
    const Kind kind_;
    const SteadyClock::time_point start_;
};

/** The poll hook every ccl:: blocking loop installs in SpinWait. */
inline void
pollAbort()
{
    abortPoll();
}

} // namespace

void
SpinLock::lock()
{
    // Paper: while atomicCAS(lock,0,1) != 0 {} followed by a fence.
    // acquire ordering plays the role of the threadfence; the shared
    // SpinWait ladder keeps the protocol live on oversubscribed CPU
    // cores. The periodic abortPoll bounds the spin: it throws while
    // the lock is NOT held, so an abort can never leak a locked
    // SpinLock.
    int expected = 0;
    util::SpinWait spin;
    while (!flag_.compare_exchange_weak(expected, 1,
                                        std::memory_order_acquire,
                                        std::memory_order_relaxed)) {
        expected = 0;
        spin.once(pollAbort);
    }
    // Contention telemetry, attributed to the current rank; the fast
    // path (CAS succeeds first try) records nothing.
    if (spin.rounds() > 0)
        obs::RankCounters::global().addCasRetries(spin.rounds());
}

bool
SpinLock::lockFor(std::chrono::nanoseconds timeout)
{
    int expected = 0;
    util::SpinWait spin;
    SteadyClock::time_point deadline{};
    bool deadline_set = false;
    while (!flag_.compare_exchange_weak(expected, 1,
                                        std::memory_order_acquire,
                                        std::memory_order_relaxed)) {
        expected = 0;
        // The deadline clock starts on the first failed attempt so the
        // uncontended path never reads the clock at all.
        if (!deadline_set) {
            deadline = SteadyClock::now() + timeout;
            deadline_set = true;
        } else if (SteadyClock::now() >= deadline) {
            obs::RankCounters::global().addCasRetries(spin.rounds());
            return false;
        }
        spin.once(pollAbort);
    }
    if (spin.rounds() > 0)
        obs::RankCounters::global().addCasRetries(spin.rounds());
    return true;
}

void
SpinLock::unlock()
{
    // Paper: threadfence(); atomicExch(lock, 0).
    flag_.store(0, std::memory_order_release);
}

bool
SpinLock::tryLock()
{
    int expected = 0;
    if (flag_.compare_exchange_strong(expected, 1,
                                      std::memory_order_acquire,
                                      std::memory_order_relaxed))
        return true;
    // A failed tryLock is one failed CAS — same contention signal as a
    // retry inside lock(), so it lands in the same counter.
    obs::RankCounters::global().addCasRetries(1);
    return false;
}

BoundedSemaphore::BoundedSemaphore(int capacity, int initial)
    : count_(initial), capacity_(capacity)
{
    CCUBE_CHECK(capacity >= 1, "semaphore capacity must be positive");
    CCUBE_CHECK(initial >= 0 && initial <= capacity,
                "initial count out of range");
}

SemaphoreWaiter*
BoundedSemaphore::popWaiterLocked()
{
    SemaphoreWaiter* head = waiters_head_;
    if (head != nullptr) {
        waiters_head_ = head->next_;
        if (waiters_head_ == nullptr)
            waiters_tail_ = nullptr;
        head->next_ = nullptr;
    }
    return head;
}

void
BoundedSemaphore::post()
{
    // Paper's post(): lock; while cnt == capacity { unlock; lock; }
    // ++cnt; unlock. The abort poll runs while the lock is dropped.
    lock_.lock();
    if (count_ == capacity_) {
        obs::RankCounters::global().addPostStall();
        StallTimer timer(StallTimer::Kind::kPost);
        util::SpinWait spin;
        while (count_ == capacity_) {
            lock_.unlock();
            spin.once(pollAbort);
            lock_.lock();
        }
    }
    ++count_;
    SemaphoreWaiter* waiter = popWaiterLocked();
    lock_.unlock();
    // The wake runs outside the lock: semaphoreReady() only enqueues
    // the parked task onto its engine, it never re-enters this
    // semaphore.
    if (waiter != nullptr)
        waiter->semaphoreReady();
}

void
BoundedSemaphore::wait()
{
    // Paper's wait(): lock; while cnt == 0 { unlock; lock; } --cnt;
    // unlock.
    lock_.lock();
    if (count_ == 0) {
        obs::RankCounters::global().addWaitStall();
        StallTimer timer(StallTimer::Kind::kWait);
        util::SpinWait spin;
        while (count_ == 0) {
            lock_.unlock();
            spin.once(pollAbort);
            lock_.lock();
        }
    }
    --count_;
    lock_.unlock();
}

bool
BoundedSemaphore::postFor(std::chrono::nanoseconds timeout)
{
    lock_.lock();
    if (count_ == capacity_) {
        obs::RankCounters::global().addPostStall();
        StallTimer timer(StallTimer::Kind::kPost);
        util::SpinWait spin;
        while (count_ == capacity_) {
            lock_.unlock();
            abortPoll();
            if (timer.expired(timeout))
                return false;
            spin.once(pollAbort);
            lock_.lock();
        }
    }
    ++count_;
    SemaphoreWaiter* waiter = popWaiterLocked();
    lock_.unlock();
    if (waiter != nullptr)
        waiter->semaphoreReady();
    return true;
}

bool
BoundedSemaphore::waitFor(std::chrono::nanoseconds timeout)
{
    lock_.lock();
    if (count_ == 0) {
        obs::RankCounters::global().addWaitStall();
        StallTimer timer(StallTimer::Kind::kWait);
        util::SpinWait spin;
        while (count_ == 0) {
            lock_.unlock();
            abortPoll();
            if (timer.expired(timeout))
                return false;
            spin.once(pollAbort);
            lock_.lock();
        }
    }
    --count_;
    lock_.unlock();
    return true;
}

bool
BoundedSemaphore::tryWait()
{
    SpinLockGuard guard(lock_);
    if (count_ == 0)
        return false;
    --count_;
    return true;
}

bool
BoundedSemaphore::tryPost()
{
    lock_.lock();
    if (count_ == capacity_) {
        lock_.unlock();
        return false;
    }
    ++count_;
    SemaphoreWaiter* waiter = popWaiterLocked();
    lock_.unlock();
    if (waiter != nullptr)
        waiter->semaphoreReady();
    return true;
}

bool
BoundedSemaphore::parkOnWait(SemaphoreWaiter& waiter)
{
    SpinLockGuard guard(lock_);
    // Condition recheck under the lock closes the lost-wakeup window:
    // a post() that landed between the caller's failed tryWait() and
    // this registration is observed here, and the caller retries
    // instead of parking.
    if (count_ > 0)
        return false;
    waiter.next_ = nullptr;
    if (waiters_tail_ != nullptr)
        waiters_tail_->next_ = &waiter;
    else
        waiters_head_ = &waiter;
    waiters_tail_ = &waiter;
    return true;
}

bool
BoundedSemaphore::cancelPark(SemaphoreWaiter& waiter)
{
    SpinLockGuard guard(lock_);
    SemaphoreWaiter* prev = nullptr;
    for (SemaphoreWaiter* node = waiters_head_; node != nullptr;
         node = node->next_) {
        if (node == &waiter) {
            if (prev != nullptr)
                prev->next_ = node->next_;
            else
                waiters_head_ = node->next_;
            if (waiters_tail_ == node)
                waiters_tail_ = prev;
            node->next_ = nullptr;
            return true;
        }
        prev = node;
    }
    return false;
}

int
BoundedSemaphore::value() const
{
    SpinLockGuard guard(lock_);
    return count_;
}

void
BoundedSemaphore::reset(int value)
{
    CCUBE_CHECK(value >= 0 && value <= capacity_,
                "semaphore reset value " << value << " out of range");
    SpinLockGuard guard(lock_);
    CCUBE_CHECK(waiters_head_ == nullptr,
                "semaphore reset with parked waiters");
    count_ = value;
}

void
CheckableCounter::post()
{
    SpinLockGuard guard(lock_);
    ++count_;
}

void
CheckableCounter::check(std::int64_t value) const
{
    // Paper's check(): lock; while cnt < value { unlock; lock; }
    // (just checks, never updates); unlock.
    lock_.lock();
    util::SpinWait spin;
    while (count_ < value) {
        lock_.unlock();
        spin.once(pollAbort);
        lock_.lock();
    }
    lock_.unlock();
}

bool
CheckableCounter::checkFor(std::int64_t value,
                           std::chrono::nanoseconds timeout) const
{
    const SteadyClock::time_point deadline =
        SteadyClock::now() + timeout;
    lock_.lock();
    util::SpinWait spin;
    while (count_ < value) {
        lock_.unlock();
        abortPoll();
        if (SteadyClock::now() >= deadline)
            return false;
        spin.once(pollAbort);
        lock_.lock();
    }
    lock_.unlock();
    return true;
}

bool
CheckableCounter::checkNow(std::int64_t value) const
{
    SpinLockGuard guard(lock_);
    return count_ >= value;
}

std::int64_t
CheckableCounter::value() const
{
    SpinLockGuard guard(lock_);
    return count_;
}

void
CheckableCounter::reset()
{
    SpinLockGuard guard(lock_);
    count_ = 0;
}

} // namespace ccl
} // namespace ccube
