/**
 * @file
 * Training-throughput comparison: evaluates one workload across every
 * configuration of the paper (B, C1, C2, R, CC), both bandwidth
 * settings, and a batch sweep, then shows the per-GPU detour cost.
 *
 * Usage: train_comparison [zfnet|vgg16|resnet50]   (default resnet50)
 *                         [--trace-out=FILE] [--metrics-out=FILE]
 */

#include <cstring>
#include <iostream>

#include "core/ccube_engine.h"
#include "core/report.h"
#include "core/trainer.h"
#include "obs/session.h"
#include "util/flags.h"

int
main(int argc, char** argv)
{
    using namespace ccube;

    const util::Flags flags(argc, argv);
    obs::ObsSession obs_session(flags);

    dnn::NetworkModel network = dnn::buildResnet50();
    if (argc > 1 && argv[1][0] == '-')
        argc = 1; // only observability flags given, no workload
    if (argc > 1) {
        if (std::strcmp(argv[1], "zfnet") == 0) {
            network = dnn::buildZfNet();
        } else if (std::strcmp(argv[1], "vgg16") == 0) {
            network = dnn::buildVgg16();
        } else if (std::strcmp(argv[1], "resnet50") != 0) {
            std::cerr << "unknown workload: " << argv[1]
                      << " (want zfnet|vgg16|resnet50)\n";
            return 1;
        }
    }

    core::CCubeEngine engine(std::move(network));
    std::cout << "Workload " << engine.network().name() << ": "
              << engine.network().numLayers() << " layers, "
              << engine.network().totalParams() << " parameters\n\n";

    util::Table table = core::makeIterationTable();
    for (const auto& [bw_name, bw] :
         {std::pair<const char*, double>{"low", 0.25},
          std::pair<const char*, double>{"high", 1.0}}) {
        for (int batch : {16, 32, 64, 128}) {
            core::IterationConfig config;
            config.batch = batch;
            config.bandwidth_scale = bw;
            for (core::Mode mode : core::allModes()) {
                core::addIterationRow(table, engine.network().name(),
                                      bw_name, batch, mode,
                                      engine.evaluate(mode, config));
            }
        }
    }
    table.print(std::cout);

    // Whole-run throughput over 100 iterations (cold start included).
    std::cout << "\nSimulated 100-iteration run (batch 64, high "
                 "bandwidth):\n";
    core::Trainer trainer(engine.scheduler(), 8);
    core::IterationConfig run_config;
    run_config.batch = 64;
    util::Table run_table({"mode", "total_s", "samples_per_s",
                           "scaling_efficiency"});
    for (core::Mode mode : core::allModes()) {
        const auto run = trainer.run(mode, run_config, 100);
        run_table.addRow(
            {core::modeName(mode),
             util::formatDouble(run.total_time, 3),
             util::formatDouble(run.samples_per_second, 0),
             util::formatDouble(run.scaling_efficiency, 3)});
    }
    run_table.print(std::cout);

    std::cout << "\nPer-GPU normalized performance under CC "
                 "(batch 64, high bandwidth):\n";
    core::IterationConfig config;
    config.batch = 64;
    const auto perf =
        engine.perGpuNormalizedPerf(core::Mode::kCCube, config);
    for (std::size_t g = 0; g < perf.size(); ++g) {
        std::cout << "  GPU" << g << ": "
                  << util::formatDouble(perf[g], 4)
                  << (perf[g] < 0.999 ? "   (detour forwarding node)"
                                      : "")
                  << "\n";
    }
    obs_session.finish();
    return 0;
}
