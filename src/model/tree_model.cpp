#include "model/tree_model.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace ccube {
namespace model {

double
TreeModel::stepTime(double bytes, int chunks) const
{
    CCUBE_CHECK(chunks >= 1, "need at least one chunk");
    CCUBE_CHECK(bytes > 0.0, "non-positive message size");
    return link_.time(bytes / static_cast<double>(chunks));
}

double
TreeModel::phaseTime(int p, double bytes, int chunks) const
{
    return (log2Nodes(p) + static_cast<double>(chunks)) *
           stepTime(bytes, chunks);
}

double
TreeModel::optimalChunks(int p, double bytes) const
{
    CCUBE_CHECK(bytes > 0.0, "non-positive message size");
    return std::sqrt(log2Nodes(p) * link_.beta * bytes / link_.alpha);
}

int
TreeModel::optimalChunksInt(int p, double bytes) const
{
    return std::max(1, static_cast<int>(std::lround(
                           optimalChunks(p, bytes))));
}

double
TreeModel::allReduceTime(int p, double bytes) const
{
    const double logp = log2Nodes(p);
    return 2.0 * logp * link_.alpha + 2.0 * link_.beta * bytes +
           4.0 * std::sqrt(link_.alpha * link_.beta * bytes * logp);
}

double
TreeModel::allReduceTimeChunked(int p, double bytes, int chunks) const
{
    return 2.0 * phaseTime(p, bytes, chunks);
}

double
TreeModel::turnaroundTime(int p, double bytes, int chunks) const
{
    const double s = stepTime(bytes, chunks);
    return (2.0 * log2Nodes(p) + static_cast<double>(chunks)) * s;
}

double
TreeModel::effectiveBandwidth(int p, double bytes) const
{
    return bytes / allReduceTime(p, bytes);
}

} // namespace model
} // namespace ccube
