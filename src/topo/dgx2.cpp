#include "topo/dgx2.h"

#include <string>
#include <vector>

#include "util/logging.h"

namespace ccube {
namespace topo {

Graph
makeDgx2(const Dgx2Params& params)
{
    CCUBE_CHECK(params.num_gpus >= 2, "DGX-2 model needs GPUs");
    CCUBE_CHECK(params.num_switch_planes >= 1,
                "DGX-2 model needs switch planes");

    Graph graph("dgx2");
    for (int g = 0; g < params.num_gpus; ++g)
        graph.addNode("GPU" + std::to_string(g));
    for (int p = 0; p < params.num_switch_planes; ++p) {
        const NodeId sw =
            graph.addNode("NVSwitch" + std::to_string(p));
        graph.markSwitch(sw);
        CCUBE_CHECK(sw == dgx2SwitchNode(params, p),
                    "switch node id mismatch");
    }
    // One NVLink from every GPU into every plane. A GPU's links to
    // the planes are its six lanes; the planes are non-blocking.
    for (int g = 0; g < params.num_gpus; ++g) {
        for (int p = 0; p < params.num_switch_planes; ++p) {
            graph.addLink(g, dgx2SwitchNode(params, p),
                          params.nvlink_bandwidth,
                          params.nvlink_latency + params.switch_latency,
                          LinkKind::kNvlink);
        }
    }
    return graph;
}

namespace {

/**
 * Greedy edge coloring of a binary tree: edges sharing a node get
 * distinct colors. With arity ≤ 2 (max degree 3) a BFS-order greedy
 * pass needs at most 3 colors — one switch plane per color keeps
 * every GPU port down to a single logical flow per direction.
 */
std::vector<int>
colorTreeEdges(const BinaryTree& tree)
{
    const auto edges = tree.edges();
    std::vector<int> colors(edges.size(), -1);
    // Per node, the set of colors already taken by incident edges.
    std::vector<std::vector<bool>> taken(
        static_cast<std::size_t>(tree.numNodes()),
        std::vector<bool>(3, false));
    for (std::size_t e = 0; e < edges.size(); ++e) {
        const auto& [u, v] = edges[e];
        int color = 0;
        while (color < 3 &&
               (taken[static_cast<std::size_t>(u)]
                     [static_cast<std::size_t>(color)] ||
                taken[static_cast<std::size_t>(v)]
                     [static_cast<std::size_t>(color)])) {
            ++color;
        }
        CCUBE_CHECK(color < 3, "tree is not 3-edge-colorable?");
        colors[e] = color;
        taken[static_cast<std::size_t>(u)]
             [static_cast<std::size_t>(color)] = true;
        taken[static_cast<std::size_t>(v)]
             [static_cast<std::size_t>(color)] = true;
    }
    return colors;
}

/**
 * Routes @p tree's edges through planes [first_plane, first_plane+3)
 * according to the edge coloring, so no GPU port carries two of this
 * tree's flows.
 */
TreeEmbedding
embedColored(const Graph& graph, const Dgx2Params& params,
             BinaryTree tree, int first_plane)
{
    TreeEmbedding embedding(std::move(tree));
    const auto colors = colorTreeEdges(embedding.tree);
    const auto edges = embedding.tree.edges();
    for (std::size_t e = 0; e < edges.size(); ++e) {
        const NodeId sw = dgx2SwitchNode(
            params, first_plane + colors[e]);
        const auto& [parent, child] = edges[e];
        CCUBE_CHECK(graph.hasChannel(parent, sw) &&
                        graph.hasChannel(sw, child),
                    "plane not wired");
        embedding.routes.push_back(Route{{parent, sw, child}});
    }
    return embedding;
}

} // namespace

DoubleTreeEmbedding
makeDgx2DoubleTree(const Graph& dgx2, const Dgx2Params& params)
{
    CCUBE_CHECK(params.num_switch_planes >= 6,
                "two 3-edge-colored trees need six planes");
    const BinaryTree t0 = BinaryTree::inorder(params.num_gpus);
    const BinaryTree t1 = t0.mirrored();
    return DoubleTreeEmbedding(embedColored(dgx2, params, t0, 0),
                               embedColored(dgx2, params, t1, 3));
}

} // namespace topo
} // namespace ccube
