# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for ccl_mailbox_test.
