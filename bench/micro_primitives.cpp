/**
 * @file
 * Micro-benchmarks (google-benchmark) for the building blocks whose
 * cost the paper's design leans on: the device-side-style sync
 * primitives (Fig. 11), the mailbox path, the event queue, the
 * gradient queue's enqueue/dequeue — and the full functional AllReduce
 * per algorithm × message size, run against all three execution
 * engines (persistent rank executor, legacy spawn-per-collective, and
 * the state-machine pool) so one run yields before/after numbers.
 *
 * The rank_scaling sweep is the headline of the state-machine
 * runtime: double-tree AllReduce from P=8 up to P=1024 logical ranks,
 * recording the OS threads each engine needed and the resulting
 * ranks-per-thread density. Thread-per-rank legs are capped at P=128
 * (beyond that they need many hundreds of threads — which is the
 * point); the state-machine legs run to P=1024 on the shared pool.
 * Pin CCUBE_CCL_SM_WORKERS to make the density records deterministic
 * across machines (CI pins 4).
 *
 * AllReduce results are exported to BENCH_ccl.json (schema
 * bench_ccl/v1, see util/bench_json.h); set CCUBE_BENCH_OUT to
 * override the path. Every rank_scaling/statemachine record also
 * emits a "ranks_per_core_gate" companion whose ns_per_op is
 * 1e6 × threads ÷ ranks — a lower-is-better scalar bench_compare can
 * gate, so a change that silently grows the pool (or forces the sweep
 * back onto thread-per-rank) trips the perf gate.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "ccl/communicator.h"
#include "ccl/double_tree_allreduce.h"
#include "ccl/mailbox.h"
#include "ccl/overlapped_tree_allreduce.h"
#include "ccl/primitives.h"
#include "ccl/ring_allreduce.h"
#include "ccl/protocol.h"
#include "ccl/state_machine.h"
#include "ccl/sync_primitives.h"
#include "ccl/tree_allreduce.h"
#include "ccl/tuner.h"
#include "core/gradient_queue.h"
#include "sim/event_queue.h"
#include "sim/resource.h"
#include "topo/dgx1.h"
#include "topo/double_tree.h"
#include "topo/ring_embedding.h"
#include "topo/tree_embedding.h"
#include "obs/session.h"
#include "util/bench_json.h"
#include "util/flags.h"

namespace {

using namespace ccube;

void
BM_SpinLockUncontended(benchmark::State& state)
{
    ccl::SpinLock lock;
    for (auto _ : state) {
        lock.lock();
        lock.unlock();
    }
}
BENCHMARK(BM_SpinLockUncontended);

void
BM_SemaphorePostWait(benchmark::State& state)
{
    ccl::BoundedSemaphore sem(1024);
    for (auto _ : state) {
        sem.post();
        sem.wait();
    }
}
BENCHMARK(BM_SemaphorePostWait);

void
BM_CheckableCounterPostCheck(benchmark::State& state)
{
    ccl::CheckableCounter counter;
    std::int64_t target = 0;
    for (auto _ : state) {
        counter.post();
        counter.check(++target);
    }
}
BENCHMARK(BM_CheckableCounterPostCheck);

void
BM_MailboxSendRecv(benchmark::State& state)
{
    ccl::Mailbox box(8);
    const std::vector<float> chunk(
        static_cast<std::size_t>(state.range(0)), 1.0f);
    std::vector<float> out;
    for (auto _ : state) {
        box.send(chunk, 0);
        box.recv(out);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        state.range(0) * static_cast<std::int64_t>(sizeof(float)));
}
BENCHMARK(BM_MailboxSendRecv)->Arg(256)->Arg(4096)->Arg(65536);

void
BM_MailboxRecvReduce(benchmark::State& state)
{
    ccl::Mailbox box(8);
    const std::vector<float> chunk(
        static_cast<std::size_t>(state.range(0)), 1.0f);
    std::vector<float> acc(chunk.size(), 0.0f);
    for (auto _ : state) {
        box.send(chunk, 0);
        box.recvReduce(acc);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        state.range(0) * static_cast<std::int64_t>(sizeof(float)));
}
BENCHMARK(BM_MailboxRecvReduce)->Arg(4096)->Arg(65536);

void
BM_EventQueueScheduleRun(benchmark::State& state)
{
    const int events = static_cast<int>(state.range(0));
    for (auto _ : state) {
        sim::EventQueue queue;
        for (int i = 0; i < events; ++i)
            queue.schedule(static_cast<double>(i), []() {});
        queue.run();
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * events);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(100000);

void
BM_FifoResourcePipeline(benchmark::State& state)
{
    for (auto _ : state) {
        sim::Simulation sim;
        sim::FifoResource res(sim, "ch");
        for (int i = 0; i < 1000; ++i)
            res.request([]() { return 1.0; }, nullptr);
        sim.run();
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_FifoResourcePipeline);

void
BM_GradientQueueIteration(benchmark::State& state)
{
    const int layers = static_cast<int>(state.range(0));
    std::vector<std::int64_t> table;
    for (int l = 1; l <= layers; ++l)
        table.push_back(4 * l);
    for (auto _ : state) {
        core::GradientQueue queue(table);
        for (int l = 0; l < layers; ++l) {
            for (int c = 0; c < 4; ++c)
                queue.enqueueChunk();
            queue.dequeueLayer(l);
        }
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * layers);
}
BENCHMARK(BM_GradientQueueIteration)->Arg(16)->Arg(128);

// ---------------------------------------------------------------------------
// Functional AllReduce latency: algorithm × message size × execution engine.
//
// The "persistent" mode runs on the parked RankExecutor threads; the
// "spawn" mode re-creates every rank/forwarder thread per collective,
// which is the pre-executor behaviour. Comparing the two is the
// paper's Fig. 3 argument (invocation granularity) applied to this
// host runtime. Buffers are zero-filled so repeated iterations keep
// summing zeros instead of overflowing.
// ---------------------------------------------------------------------------

enum class Alg { kRing, kTree, kOverlappedTree, kDoubleTree };

/** Topologies + one communicator per executor mode, built once. */
struct AllReduceFixture {
    topo::Graph dgx1 = topo::makeDgx1();
    topo::RingEmbedding ring = topo::findHamiltonianRing(dgx1, 8);
    topo::TreeEmbedding tree =
        topo::embedTree(dgx1, topo::BinaryTree::inorder(8));
    topo::DoubleTreeEmbedding double_tree = topo::makeDgx1DoubleTree(dgx1);
    ccl::Communicator persistent{8, 4,
                                 ccl::RankExecutor::Mode::kPersistent};
    ccl::Communicator spawn{8, 4,
                            ccl::RankExecutor::Mode::kSpawnPerCall};
    ccl::Communicator statemachine{
        8, 4, ccl::RankExecutor::Mode::kStateMachine};
};

AllReduceFixture&
fixture()
{
    static AllReduceFixture f;
    return f;
}

constexpr int kAllReduceChunks = 4;

void
runAllReduce(benchmark::State& state, Alg alg,
             ccl::RankExecutor::Mode mode)
{
    AllReduceFixture& f = fixture();
    ccl::Communicator& comm =
        mode == ccl::RankExecutor::Mode::kPersistent ? f.persistent
        : mode == ccl::RankExecutor::Mode::kSpawnPerCall
            ? f.spawn
            : f.statemachine;
    const auto elems = static_cast<std::size_t>(state.range(0));
    ccl::RankBuffers buffers(8, std::vector<float>(elems, 0.0f));
    for (auto _ : state) {
        switch (alg) {
        case Alg::kRing:
            ccl::ringAllReduce(comm, buffers, f.ring);
            break;
        case Alg::kTree:
            ccl::treeAllReduce(comm, buffers, f.tree, kAllReduceChunks,
                               ccl::TreePhaseMode::kTwoPhase);
            break;
        case Alg::kOverlappedTree:
            ccl::overlappedTreeAllReduce(comm, buffers, f.tree,
                                         kAllReduceChunks);
            break;
        case Alg::kDoubleTree:
            ccl::doubleTreeAllReduce(comm, buffers, f.double_tree,
                                     kAllReduceChunks,
                                     ccl::TreePhaseMode::kOverlapped);
            break;
        }
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * state.range(0) *
        static_cast<std::int64_t>(sizeof(float)));
}

void
registerAllReduceBenchmarks()
{
    struct AlgEntry {
        const char* name;
        Alg alg;
    };
    struct ModeEntry {
        const char* name;
        ccl::RankExecutor::Mode mode;
    };
    static constexpr AlgEntry kAlgs[] = {
        {"ring", Alg::kRing},
        {"tree", Alg::kTree},
        {"overlapped_tree", Alg::kOverlappedTree},
        {"double_tree", Alg::kDoubleTree},
    };
    static constexpr ModeEntry kModes[] = {
        {"persistent", ccl::RankExecutor::Mode::kPersistent},
        {"spawn", ccl::RankExecutor::Mode::kSpawnPerCall},
        {"statemachine", ccl::RankExecutor::Mode::kStateMachine},
    };
    for (const AlgEntry& alg : kAlgs) {
        for (const ModeEntry& mode : kModes) {
            const std::string name = std::string("allreduce_latency/") +
                                     alg.name + "/" + mode.name;
            benchmark::RegisterBenchmark(
                name.c_str(),
                [alg, mode](benchmark::State& state) {
                    runAllReduce(state, alg.alg, mode.mode);
                })
                ->Arg(256)   // 1 KiB
                ->Arg(4096)  // 16 KiB
                ->Arg(16384) // 64 KiB
                ->Unit(benchmark::kMicrosecond)
                ->UseRealTime();
        }
    }
}

// ---------------------------------------------------------------------------
// Protocol sweep: algorithm × message size × protocol × engine.
//
// The LL path trades 2x wire bytes for skipping the semaphore
// lock/post/fence round-trip on every chunk; below the crossover the
// per-chunk sync alpha dominates and LL wins, above it the doubled
// serialization loses. main() derives the "ll_small_msg_speedup"
// gate records (ns_per_op = LL ÷ Simple, lower is better) and a
// per-(alg, engine) crossover record from these rows.
// ---------------------------------------------------------------------------

void
runAllReduceProto(benchmark::State& state, Alg alg,
                  ccl::RankExecutor::Mode mode, ccl::Protocol proto)
{
    AllReduceFixture& f = fixture();
    ccl::Communicator& comm =
        mode == ccl::RankExecutor::Mode::kPersistent ? f.persistent
                                                     : f.statemachine;
    const auto elems = static_cast<std::size_t>(state.range(0));
    ccl::RankBuffers buffers(8, std::vector<float>(elems, 0.0f));
    for (auto _ : state) {
        switch (alg) {
        case Alg::kRing:
            ccl::ringAllReduce(comm, buffers, f.ring, {}, proto);
            break;
        case Alg::kTree:
            ccl::treeAllReduce(comm, buffers, f.tree, kAllReduceChunks,
                               ccl::TreePhaseMode::kTwoPhase, {}, {},
                               proto);
            break;
        case Alg::kOverlappedTree:
            ccl::overlappedTreeAllReduce(comm, buffers, f.tree,
                                         kAllReduceChunks, {}, proto);
            break;
        case Alg::kDoubleTree:
            ccl::doubleTreeAllReduce(comm, buffers, f.double_tree,
                                     kAllReduceChunks,
                                     ccl::TreePhaseMode::kOverlapped,
                                     {}, proto);
            break;
        }
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * state.range(0) *
        static_cast<std::int64_t>(sizeof(float)));
}

void
registerProtocolBenchmarks()
{
    struct AlgEntry {
        const char* name;
        Alg alg;
    };
    struct ProtoEntry {
        const char* name;
        ccl::Protocol proto;
    };
    struct ModeEntry {
        const char* name;
        ccl::RankExecutor::Mode mode;
    };
    static constexpr AlgEntry kAlgs[] = {
        {"ring", Alg::kRing},
        {"tree", Alg::kTree},
        {"overlapped_tree", Alg::kOverlappedTree},
        {"double_tree", Alg::kDoubleTree},
    };
    static constexpr ProtoEntry kProtos[] = {
        {"simple", ccl::Protocol::kSimple},
        {"ll", ccl::Protocol::kLL},
    };
    static constexpr ModeEntry kModes[] = {
        {"persistent", ccl::RankExecutor::Mode::kPersistent},
        {"statemachine", ccl::RankExecutor::Mode::kStateMachine},
    };
    for (const AlgEntry& alg : kAlgs) {
        for (const ProtoEntry& proto : kProtos) {
            for (const ModeEntry& mode : kModes) {
                const std::string name =
                    std::string("allreduce_proto/") + alg.name + "/" +
                    proto.name + "/" + mode.name;
                benchmark::RegisterBenchmark(
                    name.c_str(),
                    [alg, proto, mode](benchmark::State& state) {
                        runAllReduceProto(state, alg.alg, mode.mode,
                                          proto.proto);
                    })
                    ->Arg(256)   // 1 KiB
                    ->Arg(1024)  // 4 KiB
                    ->Arg(16384) // 64 KiB
                    ->Arg(65536) // 256 KiB
                    ->Unit(benchmark::kMicrosecond)
                    ->UseRealTime();
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rank scaling: double-tree AllReduce at P = 8 … 1024 logical ranks.
//
// Purely logical topologies (direct routes) so the protocol itself is
// what scales; fixed 64-element buffers keep this in the small-message
// regime where per-op engine overhead dominates. The interesting
// outputs are the counters: how many OS threads each engine needed and
// the resulting ranks-per-thread density — thread-per-rank is pinned
// at one-ish rank per thread by construction, the state-machine pool
// holds a handful of workers regardless of P.
// ---------------------------------------------------------------------------

constexpr int kScalingElems = 64;
constexpr int kScalingChunksPerTree = 2;

/** Logical double tree for @p ranks, built once per P. */
const topo::DoubleTreeEmbedding&
scalingDoubleTree(int ranks)
{
    static std::map<int, std::unique_ptr<topo::DoubleTreeEmbedding>>
        cache;
    auto it = cache.find(ranks);
    if (it == cache.end()) {
        it = cache
                 .emplace(
                     ranks,
                     std::make_unique<topo::DoubleTreeEmbedding>(
                         topo::directEmbedding(
                             topo::BinaryTree::inorder(ranks)),
                         topo::directEmbedding(
                             topo::BinaryTree::inorder(ranks)
                                 .mirrored())))
                 .first;
    }
    return *it->second;
}

void
runRankScaling(benchmark::State& state,
               ccl::RankExecutor::Mode mode)
{
    const int ranks = static_cast<int>(state.range(0));
    const topo::DoubleTreeEmbedding& dt = scalingDoubleTree(ranks);
    ccl::Communicator comm(ranks, 4, mode);
    ccl::RankBuffers buffers(
        static_cast<std::size_t>(ranks),
        std::vector<float>(kScalingElems, 0.0f));
    for (auto _ : state)
        ccl::doubleTreeAllReduce(comm, buffers, dt,
                                 kScalingChunksPerTree,
                                 ccl::TreePhaseMode::kTwoPhase);

    int threads = 0;
    if (mode == ccl::RankExecutor::Mode::kStateMachine) {
        threads = ccl::StateMachineEngine::shared().workerCount();
    } else {
        threads = comm.executor().threadCount() +
                  comm.executor().helperCount();
    }
    state.counters["ranks"] = static_cast<double>(ranks);
    state.counters["threads"] = static_cast<double>(threads);
    state.counters["ranks_per_core"] =
        threads > 0 ? static_cast<double>(ranks) / threads : 0.0;
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * kScalingElems *
        static_cast<std::int64_t>(sizeof(float)));
}

void
registerRankScalingBenchmarks()
{
    struct ModeEntry {
        const char* name;
        ccl::RankExecutor::Mode mode;
        std::vector<int> ranks;
    };
    // Thread-per-rank legs stop at 128 ranks (256+ OS threads for the
    // two-phase double tree already); the state-machine pool carries
    // the sweep to 1024.
    const ModeEntry modes[] = {
        {"persistent", ccl::RankExecutor::Mode::kPersistent,
         {8, 32, 128}},
        {"statemachine", ccl::RankExecutor::Mode::kStateMachine,
         {8, 32, 128, 256, 512, 1024}},
    };
    for (const ModeEntry& mode : modes) {
        const std::string name =
            std::string("rank_scaling/double_tree/") + mode.name;
        auto* bench = benchmark::RegisterBenchmark(
            name.c_str(),
            [m = mode.mode](benchmark::State& state) {
                runRankScaling(state, m);
            });
        for (const int ranks : mode.ranks)
            bench->Arg(ranks);
        bench->Unit(benchmark::kMicrosecond)->UseRealTime();
    }
}

/** Console output plus a copy of every per-iteration run. */
class CaptureReporter : public benchmark::ConsoleReporter {
public:
    std::vector<Run> runs;

    void
    ReportRuns(const std::vector<Run>& report) override
    {
        for (const Run& run : report) {
            if (run.run_type == Run::RT_Iteration &&
                !run.error_occurred)
                runs.push_back(run);
        }
        ConsoleReporter::ReportRuns(report);
    }
};

std::vector<std::string>
splitName(const std::string& name)
{
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (true) {
        const std::size_t slash = name.find('/', start);
        if (slash == std::string::npos) {
            parts.push_back(name.substr(start));
            return parts;
        }
        parts.push_back(name.substr(start, slash - start));
        start = slash + 1;
    }
}

util::BenchRecord
toRecord(const benchmark::BenchmarkReporter::Run& run)
{
    util::BenchRecord record;
    record.source = "micro_primitives";
    record.ns_per_op =
        run.iterations > 0
            ? run.real_accumulated_time /
                  static_cast<double>(run.iterations) * 1e9
            : 0.0;
    const std::vector<std::string> parts =
        splitName(run.benchmark_name());
    // allreduce_latency/<alg>/<mode>/<elems>[/real_time]
    if (parts.size() >= 4 && parts[0] == "allreduce_latency") {
        record.kind = parts[0];
        record.name = parts[1];
        record.mode = parts[2];
        record.bytes = std::strtoll(parts[3].c_str(), nullptr, 10) *
                       static_cast<std::int64_t>(sizeof(float));
    } else if (parts.size() >= 5 && parts[0] == "allreduce_proto") {
        // allreduce_proto/<alg>/<proto>/<mode>/<elems>[/real_time]
        record.kind = parts[0];
        record.name = parts[1] + "/" + parts[2];
        record.mode = parts[3];
        record.bytes = std::strtoll(parts[4].c_str(), nullptr, 10) *
                       static_cast<std::int64_t>(sizeof(float));
    } else if (parts.size() >= 4 && parts[0] == "rank_scaling") {
        // rank_scaling/<alg>/<mode>/<ranks>[/real_time] — the rank
        // count goes into the name so every P is its own gate key.
        record.kind = parts[0];
        record.name = parts[1] + "_p" + parts[3];
        record.mode = parts[2];
        record.bytes = kScalingElems *
                       static_cast<std::int64_t>(sizeof(float));
        for (const auto& [counter, value] : run.counters)
            record.extra[counter] = value;
    } else {
        record.kind = "micro";
        record.name = run.benchmark_name();
        if (parts.size() >= 2) {
            char* end = nullptr;
            const double arg =
                std::strtod(parts.back().c_str(), &end);
            if (end && *end == '\0')
                record.extra["arg"] = arg;
        }
    }
    return record;
}

} // namespace

int
main(int argc, char** argv)
{
    // Split obs flags (--profile-out=..., --trace-out=..., ...) out
    // of argv before handing it to google-benchmark, whose
    // ReportUnrecognizedArguments would otherwise reject them. The
    // ObsSession runs the sampling profiler (and any other requested
    // sink) across the whole benchmark run and flushes at exit.
    std::vector<char*> bench_args;
    std::vector<char*> obs_args;
    bench_args.push_back(argv[0]);
    obs_args.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        const bool obs_flag =
            std::strncmp(argv[i], "--profile-", 10) == 0 ||
            std::strncmp(argv[i], "--trace-", 8) == 0 ||
            std::strncmp(argv[i], "--metrics-", 10) == 0 ||
            std::strncmp(argv[i], "--report-", 9) == 0 ||
            std::strncmp(argv[i], "--monitor-", 10) == 0 ||
            std::strncmp(argv[i], "--rootcause-", 12) == 0 ||
            std::strncmp(argv[i], "--slo-", 6) == 0;
        (obs_flag ? obs_args : bench_args).push_back(argv[i]);
    }
    int bench_argc = static_cast<int>(bench_args.size());
    const ccube::util::Flags obs_flags(
        static_cast<int>(obs_args.size()), obs_args.data());
    ccube::obs::ObsSession obs_session(obs_flags);

    registerAllReduceBenchmarks();
    registerProtocolBenchmarks();
    registerRankScalingBenchmarks();
    benchmark::Initialize(&bench_argc, bench_args.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                               bench_args.data()))
        return 1;
    CaptureReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();

    std::vector<ccube::util::BenchRecord> records;
    records.reserve(reporter.runs.size());
    for (const auto& run : reporter.runs)
        records.push_back(toRecord(run));
    // Derive the lower-is-better density gate from the state-machine
    // scaling rows: ns_per_op = 1e6 × threads ÷ ranks ("thread cost
    // per rank"). With CCUBE_CCL_SM_WORKERS pinned this is exact and
    // machine-independent, so bench_compare can hold it tight.
    const std::size_t measured = records.size();
    for (std::size_t i = 0; i < measured; ++i) {
        const ccube::util::BenchRecord& r = records[i];
        if (r.kind != "rank_scaling" || r.mode != "statemachine")
            continue;
        const auto ranks = r.extra.find("ranks");
        const auto threads = r.extra.find("threads");
        if (ranks == r.extra.end() || threads == r.extra.end() ||
            ranks->second <= 0.0)
            continue;
        ccube::util::BenchRecord gate = r;
        gate.kind = "ranks_per_core_gate";
        gate.ns_per_op = 1e6 * threads->second / ranks->second;
        records.push_back(std::move(gate));
    }
    // Derive the LL-vs-Simple protocol gates from the proto sweep:
    //  - "ll_small_msg_speedup": ns_per_op = LL ÷ Simple at one
    //    (alg, engine, size) cell, lower is better. The headline gate
    //    cell is ring/persistent at ≤ 4 KiB, where LL should be
    //    ≥ 1.3x faster (ratio ≤ 0.77).
    //  - "ll_crossover": ns_per_op = the largest swept message size
    //    (bytes) at which LL still beat Simple for that (alg, engine).
    {
        // (alg, mode, bytes) → ns per protocol.
        std::map<std::tuple<std::string, std::string, std::int64_t>,
                 std::map<std::string, double>>
            cells;
        for (const ccube::util::BenchRecord& r : records) {
            if (r.kind != "allreduce_proto")
                continue;
            const std::size_t slash = r.name.find('/');
            if (slash == std::string::npos)
                continue;
            cells[{r.name.substr(0, slash), r.mode, r.bytes}]
                 [r.name.substr(slash + 1)] = r.ns_per_op;
        }
        std::map<std::pair<std::string, std::string>, double> crossover;
        for (const auto& [key, protos] : cells) {
            const auto simple = protos.find("simple");
            const auto ll = protos.find("ll");
            if (simple == protos.end() || ll == protos.end() ||
                simple->second <= 0.0)
                continue;
            const auto& [alg, mode, bytes] = key;
            if (bytes <= 4096) {
                ccube::util::BenchRecord gate;
                gate.source = "micro_primitives";
                gate.kind = "ll_small_msg_speedup";
                gate.name = alg;
                gate.mode = mode;
                gate.bytes = bytes;
                gate.ns_per_op = ll->second / simple->second;
                gate.extra["speedup"] =
                    ll->second > 0.0 ? simple->second / ll->second
                                     : 0.0;
                records.push_back(std::move(gate));
            }
            double& best = crossover[{alg, mode}];
            if (ll->second < simple->second &&
                static_cast<double>(bytes) > best)
                best = static_cast<double>(bytes);
        }
        for (const auto& [key, bytes] : crossover) {
            ccube::util::BenchRecord record;
            record.source = "micro_primitives";
            record.kind = "ll_crossover";
            record.name = key.first;
            record.mode = key.second;
            record.ns_per_op = bytes; // largest size where LL won
            records.push_back(std::move(record));
        }
    }
    if (!records.empty()) {
        const std::string path = ccube::util::benchOutputPath();
        ccube::util::writeBenchRecords(path, records, /*append=*/true);
        std::fprintf(stderr, "wrote %zu records to %s\n",
                     records.size(), path.c_str());
    }
    // Archive the tuner's selection table (DGX-1, P=8) when asked —
    // CI uploads this as the tuner_table.txt artifact.
    if (const char* table_out = std::getenv("CCUBE_TUNER_TABLE_OUT")) {
        const ccube::topo::Graph dgx1 = ccube::topo::makeDgx1();
        std::ofstream out(table_out);
        out << ccube::ccl::Tuner::global().formatTable(dgx1, 8);
        std::fprintf(stderr, "wrote tuner table to %s\n", table_out);
    }
    return 0;
}
