file(REMOVE_RECURSE
  "CMakeFiles/fig03_invocation_granularity.dir/fig03_invocation_granularity.cpp.o"
  "CMakeFiles/fig03_invocation_granularity.dir/fig03_invocation_granularity.cpp.o.d"
  "fig03_invocation_granularity"
  "fig03_invocation_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_invocation_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
