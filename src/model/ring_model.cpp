#include "model/ring_model.h"

#include "util/logging.h"

namespace ccube {
namespace model {

double
RingModel::allGatherTime(int p, double bytes) const
{
    CCUBE_CHECK(p >= 2, "ring needs at least two nodes");
    CCUBE_CHECK(bytes > 0.0, "non-positive message size");
    const double steps = static_cast<double>(p - 1);
    return steps * link_.time(bytes / static_cast<double>(p));
}

double
RingModel::reduceScatterTime(int p, double bytes) const
{
    return allGatherTime(p, bytes);
}

double
RingModel::allReduceTime(int p, double bytes) const
{
    return reduceScatterTime(p, bytes) + allGatherTime(p, bytes);
}

double
RingModel::effectiveBandwidth(int p, double bytes) const
{
    return bytes / allReduceTime(p, bytes);
}

} // namespace model
} // namespace ccube
