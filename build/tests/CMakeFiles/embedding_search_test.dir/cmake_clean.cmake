file(REMOVE_RECURSE
  "CMakeFiles/embedding_search_test.dir/embedding_search_test.cpp.o"
  "CMakeFiles/embedding_search_test.dir/embedding_search_test.cpp.o.d"
  "embedding_search_test"
  "embedding_search_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embedding_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
