/**
 * @file
 * Tests for the LL/Simple wire-protocol split (ccl/protocol.h) and the
 * auto-tuner (ccl/tuner.h): byte-identical reduction results across
 * protocols, engine modes and the auto path; faults killed/stalled
 * mid-LL-collective get watchdog blame and a clean clearAbort retry
 * (LL never parks, so the abort epoch must unwedge pure pollers); the
 * tuner picks LL below the α-β crossover and Simple above it, on the
 * functional, analytic-model and DES paths alike.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "ccl/communicator.h"
#include "ccl/double_tree_allreduce.h"
#include "ccl/executor.h"
#include "ccl/fault.h"
#include "ccl/overlapped_tree_allreduce.h"
#include "ccl/primitives.h"
#include "ccl/protocol.h"
#include "ccl/ring_allreduce.h"
#include "ccl/tree_allreduce.h"
#include "ccl/tuner.h"
#include "model/ring_model.h"
#include "sim/simulation.h"
#include "simnet/channel.h"
#include "simnet/ring_schedule.h"
#include "topo/dgx1.h"
#include "topo/double_tree.h"
#include "topo/ring_embedding.h"
#include "topo/tree_embedding.h"
#include "util/rng.h"

namespace ccube {
namespace {

using namespace std::chrono_literals;
using ccl::Protocol;
using ccl::RankExecutor;

constexpr int kChunks = 4;
constexpr int kSlots = 4;

struct Dgx1Topologies {
    topo::Graph graph = topo::makeDgx1();
    topo::RingEmbedding ring = topo::findHamiltonianRing(graph, 8);
    topo::TreeEmbedding tree =
        topo::embedTree(graph, topo::BinaryTree::inorder(8));
    topo::DoubleTreeEmbedding double_tree =
        topo::makeDgx1DoubleTree(graph);
};

/** Direct-route logical topologies at arbitrary P (no physical graph
 *  needed), as in ccl_statemachine_test. */
struct LogicalTopologies {
    explicit LogicalTopologies(int ranks)
        : ring(topo::makeSequentialRing(ranks)),
          tree(topo::directEmbedding(topo::BinaryTree::inorder(ranks))),
          double_tree(
              topo::directEmbedding(topo::BinaryTree::inorder(ranks)),
              topo::directEmbedding(
                  topo::BinaryTree::inorder(ranks).mirrored()))
    {
    }

    topo::RingEmbedding ring;
    topo::TreeEmbedding tree;
    topo::DoubleTreeEmbedding double_tree;
};

ccl::RankBuffers
seededBuffers(int ranks, int elems, std::uint64_t seed)
{
    util::Rng rng(seed);
    ccl::RankBuffers buffers(static_cast<std::size_t>(ranks));
    for (auto& b : buffers) {
        b.resize(static_cast<std::size_t>(elems));
        rng.fill(b, -1.0f, 1.0f);
    }
    return buffers;
}

ccl::RankBuffers
integerBuffers(int ranks, int elems)
{
    ccl::RankBuffers buffers(static_cast<std::size_t>(ranks));
    for (int r = 0; r < ranks; ++r) {
        auto& b = buffers[static_cast<std::size_t>(r)];
        b.resize(static_cast<std::size_t>(elems));
        for (int i = 0; i < elems; ++i)
            b[static_cast<std::size_t>(i)] =
                static_cast<float>((r * 7 + i * 13) % 17 - 8);
    }
    return buffers;
}

std::vector<float>
integerSums(int ranks, int elems)
{
    std::vector<float> expected(static_cast<std::size_t>(elems));
    for (int i = 0; i < elems; ++i) {
        long sum = 0;
        for (int r = 0; r < ranks; ++r)
            sum += (r * 7 + i * 13) % 17 - 8;
        expected[static_cast<std::size_t>(i)] =
            static_cast<float>(sum);
    }
    return expected;
}

void
expectBytesIdentical(const ccl::RankBuffers& got,
                     const ccl::RankBuffers& want, const std::string& what)
{
    ASSERT_EQ(got.size(), want.size()) << what;
    for (std::size_t r = 0; r < got.size(); ++r) {
        ASSERT_EQ(got[r].size(), want[r].size()) << what;
        if (std::memcmp(got[r].data(), want[r].data(),
                        got[r].size() * sizeof(float)) != 0) {
            for (std::size_t i = 0; i < got[r].size(); ++i)
                ASSERT_EQ(got[r][i], want[r][i])
                    << what << ": rank " << r << " elem " << i
                    << " diverges between protocols";
        }
    }
}

/** One collective body, parameterized on the wire protocol. */
struct Scenario {
    const char* name;
    std::function<void(ccl::Communicator&, ccl::RankBuffers&, Protocol)>
        run;
};

std::vector<Scenario>
dgx1Scenarios(const Dgx1Topologies& topo)
{
    return {
        {"ring_allreduce",
         [&topo](ccl::Communicator& c, ccl::RankBuffers& b,
                 Protocol p) {
             ccl::ringAllReduce(c, b, topo.ring, {}, p);
         }},
        {"tree_allreduce_two_phase",
         [&topo](ccl::Communicator& c, ccl::RankBuffers& b,
                 Protocol p) {
             ccl::treeAllReduce(c, b, topo.tree, kChunks,
                                ccl::TreePhaseMode::kTwoPhase, {}, {},
                                p);
         }},
        {"tree_allreduce_overlapped",
         [&topo](ccl::Communicator& c, ccl::RankBuffers& b,
                 Protocol p) {
             ccl::overlappedTreeAllReduce(c, b, topo.tree, kChunks, {},
                                          p);
         }},
        {"double_tree_overlapped",
         [&topo](ccl::Communicator& c, ccl::RankBuffers& b,
                 Protocol p) {
             ccl::doubleTreeAllReduce(c, b, topo.double_tree, kChunks,
                                      ccl::TreePhaseMode::kOverlapped,
                                      {}, p);
         }},
    };
}

// ------------------- LL vs Simple byte identity (DGX-1, P=8, 3 engines)

TEST(ProtocolByteIdentity, LLMatchesSimpleAllEnginesOnDgx1)
{
    const Dgx1Topologies topo;
    const std::vector<RankExecutor::Mode> modes = {
        RankExecutor::Mode::kPersistent,
        RankExecutor::Mode::kSpawnPerCall,
        RankExecutor::Mode::kStateMachine,
    };
    std::uint64_t seed = 301;
    for (const Scenario& scenario : dgx1Scenarios(topo)) {
        // Reference: Simple on the persistent engine.
        ccl::RankBuffers reference = seededBuffers(8, 64, seed);
        {
            ccl::Communicator comm(8, kSlots,
                                   RankExecutor::Mode::kPersistent);
            scenario.run(comm, reference, Protocol::kSimple);
        }
        for (RankExecutor::Mode mode : modes) {
            for (Protocol proto :
                 {Protocol::kSimple, Protocol::kLL}) {
                ccl::RankBuffers buffers = seededBuffers(8, 64, seed);
                ccl::Communicator comm(8, kSlots, mode);
                scenario.run(comm, buffers, proto);
                expectBytesIdentical(
                    buffers, reference,
                    std::string(scenario.name) + "/" +
                        ccl::protocolName(proto));
            }
        }
        ++seed;
    }
}

// ------------------------------- auto protocol through the dispatcher

TEST(ProtocolByteIdentity, AutoMatchesSimpleThroughDispatcher)
{
    const Dgx1Topologies topo;
    const std::vector<ccl::AllReduceAlgorithm> algorithms = {
        ccl::AllReduceAlgorithm::kRing,
        ccl::AllReduceAlgorithm::kTree,
        ccl::AllReduceAlgorithm::kOverlappedTree,
        ccl::AllReduceAlgorithm::kCCubeDoubleTree,
    };
    const std::vector<RankExecutor::Mode> modes = {
        RankExecutor::Mode::kPersistent,
        RankExecutor::Mode::kSpawnPerCall,
        RankExecutor::Mode::kStateMachine,
    };
    std::uint64_t seed = 401;
    for (ccl::AllReduceAlgorithm algorithm : algorithms) {
        ccl::RankBuffers reference = seededBuffers(8, 96, seed);
        {
            ccl::Communicator comm(8, kSlots,
                                   RankExecutor::Mode::kPersistent);
            ccl::AllReduceOptions options;
            options.algorithm = algorithm;
            options.num_chunks = kChunks;
            options.protocol = Protocol::kSimple;
            ccl::allReduce(comm, reference, topo.graph, options);
        }
        for (RankExecutor::Mode mode : modes) {
            ccl::RankBuffers buffers = seededBuffers(8, 96, seed);
            ccl::Communicator comm(8, kSlots, mode);
            ccl::AllReduceOptions options;
            options.algorithm = algorithm;
            options.num_chunks = kChunks;
            options.protocol = Protocol::kAuto;
            ccl::allReduce(comm, buffers, topo.graph, options);
            expectBytesIdentical(buffers, reference,
                                 std::string("auto/") +
                                     ccl::algorithmName(algorithm));
        }
        ++seed;
    }
}

TEST(ProtocolByteIdentity, RunAutoComputesExactSums)
{
    const Dgx1Topologies topo;
    const std::vector<float> expected = integerSums(8, 64);
    for (RankExecutor::Mode mode : {RankExecutor::Mode::kPersistent,
                                    RankExecutor::Mode::kStateMachine}) {
        ccl::RankBuffers buffers = integerBuffers(8, 64);
        ccl::Communicator comm(8, kSlots, mode);
        comm.runAuto(buffers, topo.graph);
        for (int r = 0; r < 8; ++r)
            for (int i = 0; i < 64; ++i)
                ASSERT_EQ(buffers[static_cast<std::size_t>(r)]
                                 [static_cast<std::size_t>(i)],
                          expected[static_cast<std::size_t>(i)])
                    << "rank " << r << " elem " << i;
    }
}

// ----------------------------------------- LL at P = 64 (state machine)

TEST(ProtocolByteIdentity, LLMatchesSimpleAtSixtyFourRanks)
{
    constexpr int kRanks = 64;
    const LogicalTopologies topo(kRanks);
    const std::vector<Scenario> scenarios = {
        {"ring_allreduce_p64",
         [&topo](ccl::Communicator& c, ccl::RankBuffers& b,
                 Protocol p) {
             ccl::ringAllReduce(c, b, topo.ring, {}, p);
         }},
        {"tree_allreduce_two_phase_p64",
         [&topo](ccl::Communicator& c, ccl::RankBuffers& b,
                 Protocol p) {
             ccl::treeAllReduce(c, b, topo.tree, kChunks,
                                ccl::TreePhaseMode::kTwoPhase, {}, {},
                                p);
         }},
        {"tree_allreduce_overlapped_p64",
         [&topo](ccl::Communicator& c, ccl::RankBuffers& b,
                 Protocol p) {
             ccl::overlappedTreeAllReduce(c, b, topo.tree, kChunks, {},
                                          p);
         }},
        {"double_tree_p64",
         [&topo](ccl::Communicator& c, ccl::RankBuffers& b,
                 Protocol p) {
             ccl::doubleTreeAllReduce(c, b, topo.double_tree, kChunks,
                                      ccl::TreePhaseMode::kOverlapped,
                                      {}, p);
         }},
    };
    std::uint64_t seed = 501;
    for (const Scenario& scenario : scenarios) {
        ccl::RankBuffers reference = seededBuffers(kRanks, 128, seed);
        {
            ccl::Communicator comm(kRanks, kSlots,
                                   RankExecutor::Mode::kPersistent);
            scenario.run(comm, reference, Protocol::kSimple);
        }
        ccl::RankBuffers buffers = seededBuffers(kRanks, 128, seed);
        ccl::Communicator comm(kRanks, kSlots,
                               RankExecutor::Mode::kStateMachine);
        scenario.run(comm, buffers, Protocol::kLL);
        expectBytesIdentical(buffers, reference, scenario.name);
        ++seed;
    }
}

// ----------------------------------------- faults mid-LL-collective

class LLFault : public ::testing::Test
{
  protected:
    static constexpr int kRanks = 16;
    static constexpr int kElems = 64;
    static constexpr auto kDeadline = 300ms;

    /**
     * Arms @p fault, requires the LL tree AllReduce to surface a
     * CollectiveError blaming the faulted rank (LL pollers never park,
     * so only the abort epoch can unwedge them), then verifies
     * clearAbort() re-arms the communicator for a clean LL retry.
     */
    void expectAbortAndRecovery(const ccl::FaultInjector::Fault& fault,
                                RankExecutor::Mode mode)
    {
        const LogicalTopologies topo(kRanks);
        ccl::Communicator comm(kRanks, kSlots, mode);
        comm.setDeadline(kDeadline);
        ccl::FaultInjector injector;
        injector.arm(fault);
        comm.setFaultInjector(&injector);

        ccl::RankBuffers buffers = integerBuffers(kRanks, kElems);
        bool caught = false;
        try {
            ccl::treeAllReduce(comm, buffers, topo.tree, kChunks,
                               ccl::TreePhaseMode::kTwoPhase, {}, {},
                               Protocol::kLL);
        } catch (const ccl::CollectiveError& error) {
            caught = true;
            EXPECT_EQ(error.info().failed_rank, fault.rank);
            EXPECT_EQ(error.info().op, "tree_allreduce");
            EXPECT_GT(error.info().deadline_s, 0.0);
        }
        EXPECT_TRUE(caught) << "LL collective completed despite fault";

        // Poisoned until cleared; then a clean LL retry must succeed.
        EXPECT_THROW(ccl::treeAllReduce(comm, buffers, topo.tree,
                                        kChunks,
                                        ccl::TreePhaseMode::kTwoPhase,
                                        {}, {}, Protocol::kLL),
                     ccl::CollectiveError);
        comm.clearAbort();
        comm.setFaultInjector(nullptr);
        ccl::RankBuffers retry = integerBuffers(kRanks, kElems);
        ccl::treeAllReduce(comm, retry, topo.tree, kChunks,
                           ccl::TreePhaseMode::kTwoPhase, {}, {},
                           Protocol::kLL);
        const std::vector<float> expected =
            integerSums(kRanks, kElems);
        for (int r = 0; r < kRanks; ++r)
            for (int i = 0; i < kElems; ++i)
                ASSERT_EQ(retry[static_cast<std::size_t>(r)]
                               [static_cast<std::size_t>(i)],
                          expected[static_cast<std::size_t>(i)]);
    }
};

TEST_F(LLFault, KilledRankMidLLCollectiveIsBlamedStateMachine)
{
    ccl::FaultInjector::Fault fault;
    fault.rank = 5;
    fault.action = ccl::FaultInjector::Action::kKill;
    fault.at_op = 2;
    expectAbortAndRecovery(fault, RankExecutor::Mode::kStateMachine);
}

TEST_F(LLFault, KilledRankMidLLCollectiveIsBlamedPersistent)
{
    ccl::FaultInjector::Fault fault;
    fault.rank = 3;
    fault.action = ccl::FaultInjector::Action::kKill;
    fault.at_op = 2;
    expectAbortAndRecovery(fault, RankExecutor::Mode::kPersistent);
}

TEST_F(LLFault, StalledRankMidLLCollectiveIsBlamed)
{
    ccl::FaultInjector::Fault fault;
    fault.rank = 9;
    fault.action = ccl::FaultInjector::Action::kStall;
    fault.at_op = 3;
    expectAbortAndRecovery(fault, RankExecutor::Mode::kStateMachine);
}

// ------------------------------------------------- tuner crossover

TEST(Tuner, PicksLLBelowCrossoverAndSimpleAbove)
{
    const topo::Graph graph = topo::makeDgx1();
    ccl::Tuner& tuner = ccl::Tuner::global();
    tuner.clearCache();
    // 1 KiB (256 floats): per-step chunks are far below the
    // 0.75·α/β ≈ 86 KB crossover of the DGX-1 NVLink — LL wins.
    for (ccl::AllReduceAlgorithm algorithm :
         {ccl::AllReduceAlgorithm::kRing,
          ccl::AllReduceAlgorithm::kCCubeDoubleTree}) {
        EXPECT_EQ(tuner.chooseProtocol(graph, 8, 256, algorithm),
                  Protocol::kLL)
            << ccl::algorithmName(algorithm) << " small";
        // 256 MiB: chunks are megabytes — the 2x LL wire inflation
        // dominates and Simple wins.
        EXPECT_EQ(tuner.chooseProtocol(graph, 8, 64 * 1024 * 1024,
                                       algorithm),
                  Protocol::kSimple)
            << ccl::algorithmName(algorithm) << " large";
    }
    // The full-cell pick agrees on protocol at the extremes.
    EXPECT_EQ(tuner.choose(graph, 8, 256).protocol, Protocol::kLL);
    EXPECT_EQ(tuner.choose(graph, 8, 64 * 1024 * 1024).protocol,
              Protocol::kSimple);
}

TEST(Tuner, TableIsCachedAndDeterministic)
{
    const topo::Graph graph = topo::makeDgx1();
    ccl::Tuner& tuner = ccl::Tuner::global();
    tuner.clearCache();
    const std::string table1 = tuner.formatTable(graph, 8);
    const std::string table2 = tuner.formatTable(graph, 8);
    EXPECT_EQ(table1, table2);
    EXPECT_NE(table1.find("ll"), std::string::npos);
    EXPECT_NE(table1.find("simple"), std::string::npos);
    EXPECT_NE(table1.find("tuner table"), std::string::npos);
    tuner.clearCache();
    EXPECT_EQ(tuner.formatTable(graph, 8), table1)
        << "rebuilt table diverges from the cached one";
}

// ------------------------- crossover on the analytic-model path

TEST(ProtocolModel, AnalyticCrossoverMatchesCostShapes)
{
    const model::AlphaBeta base{4.6e-6, 4e-11};
    const ccl::ProtocolCosts ll = ccl::protocolCosts(Protocol::kLL);
    const model::AlphaBeta ll_link =
        model::applyProtocol(base, ll.payload_factor, ll.alpha_factor);
    const model::RingModel simple_ring(base);
    const model::RingModel ll_ring(ll_link);
    // Small message: latency-bound, LL's α/4 wins.
    EXPECT_LT(ll_ring.allReduceTime(8, 1024.0),
              simple_ring.allReduceTime(8, 1024.0));
    // Large message: bandwidth-bound, LL's 2x wire bytes lose.
    EXPECT_GT(ll_ring.allReduceTime(8, 64e6),
              simple_ring.allReduceTime(8, 64e6));
    // Simple's costs are the identity: the model is unchanged.
    const ccl::ProtocolCosts simple =
        ccl::protocolCosts(Protocol::kSimple);
    EXPECT_EQ(simple.payload_factor, 1.0);
    EXPECT_EQ(simple.alpha_factor, 1.0);
}

// --------------------------------- crossover on the DES (simnet) path

double
desRingCompletion(double total_bytes, Protocol proto)
{
    sim::Simulation sim;
    const topo::Graph graph = topo::makeDgx1();
    simnet::Network net(sim, graph);
    const topo::RingEmbedding ring =
        topo::findHamiltonianRing(graph, 8);
    return simnet::runRingSchedule(sim, net, ring, total_bytes, proto)
        .completion_time;
}

TEST(ProtocolDes, TimedScheduleReproducesCrossover)
{
    // Small message: the per-transfer α dominates and LL's α/4 wins.
    EXPECT_LT(desRingCompletion(1024.0, Protocol::kLL),
              desRingCompletion(1024.0, Protocol::kSimple));
    // Large message: serialization dominates and LL's 2x bytes lose.
    EXPECT_GT(desRingCompletion(64e6, Protocol::kLL),
              desRingCompletion(64e6, Protocol::kSimple));
    // Simple is byte-for-byte the pre-protocol schedule.
    EXPECT_EQ(desRingCompletion(1e6, Protocol::kSimple),
              desRingCompletion(1e6, Protocol::kSimple));
}

} // namespace
} // namespace ccube
