#include "obs/session.h"

#include <fstream>
#include <utility>

#include "obs/context.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace ccube {
namespace obs {

namespace {

bool
endsWithJson(const std::string& path)
{
    static const std::string suffix = ".json";
    return path.size() >= suffix.size() &&
           path.compare(path.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

} // namespace

ObsSession::ObsSession(const util::Flags& flags)
    : ObsSession(flags.get("trace-out"), flags.get("metrics-out"))
{
}

ObsSession::ObsSession(std::string trace_path, std::string metrics_path)
    : trace_path_(std::move(trace_path)),
      metrics_path_(std::move(metrics_path))
{
    start();
}

ObsSession::~ObsSession()
{
    finish();
}

void
ObsSession::start()
{
    if (tracing())
        TraceRecorder::global().enable();
    if (metrics())
        MetricRegistry::global().enable();
}

void
ObsSession::finish()
{
    if (finished_)
        return;
    finished_ = true;

    if (tracing()) {
        TraceRecorder& recorder = TraceRecorder::global();
        std::ofstream out(trace_path_);
        if (!out) {
            util::logWarn("obs", "cannot open trace file " + trace_path_);
        } else {
            recorder.writeJson(out);
            util::logInfo("obs",
                          "wrote " + std::to_string(recorder.eventCount()) +
                              " trace events to " + trace_path_);
        }
        recorder.disable();
    }

    if (metrics()) {
        MetricRegistry& registry = MetricRegistry::global();
        RankCounters::global().exportTo(registry);
        std::ofstream out(metrics_path_);
        if (!out) {
            util::logWarn("obs",
                          "cannot open metrics file " + metrics_path_);
        } else if (endsWithJson(metrics_path_)) {
            registry.writeJson(out);
        } else {
            registry.writeCsv(out);
        }
        registry.disable();
    }
}

} // namespace obs
} // namespace ccube
