#ifndef CCUBE_CCL_DOUBLE_TREE_ALLREDUCE_H_
#define CCUBE_CCL_DOUBLE_TREE_ALLREDUCE_H_

/**
 * @file
 * Functional double-tree AllReduce (Sanders et al. two-tree, as used
 * by NCCL) — the paper's baseline B when run two-phase, and the
 * C-Cube double tree when run overlapped on a conflict-free embedding
 * (paper Fig. 6(b) vs Fig. 6(d)).
 *
 * The message is split in half; each half is all-reduced over its own
 * tree, concurrently. Chunk ids: tree 0 carries chunks
 * [0, chunks_per_tree), tree 1 carries [chunks_per_tree, 2×...).
 */

#include "ccl/tree_allreduce.h"
#include "topo/double_tree.h"

namespace ccube {
namespace ccl {

/**
 * Runs double-tree AllReduce over @p buffers. @p chunks_per_tree
 * chunks are used within each tree. On return every buffer holds the
 * elementwise sum. @p resume skips chunks already final at every rank
 * (a supervised retry; see ccl::ChunkCheckpoint) — global chunk ids
 * [0, 2×chunks_per_tree), tree 1's offset by chunks_per_tree.
 */
AllReduceTrace
doubleTreeAllReduce(Communicator& comm, RankBuffers& buffers,
                    const topo::DoubleTreeEmbedding& embedding,
                    int chunks_per_tree, TreePhaseMode mode,
                    AllReduceTrace::Observer observer = {},
                    Protocol proto = Protocol::kSimple,
                    const SkipMask& resume = {});

} // namespace ccl
} // namespace ccube

#endif // CCUBE_CCL_DOUBLE_TREE_ALLREDUCE_H_
