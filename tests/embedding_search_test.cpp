/**
 * @file
 * Tests for the automated conflict-free double-tree search: on the
 * DGX-1 it must find an embedding with the same structural properties
 * as the paper's hand-crafted one; on degenerate graphs it must fail
 * gracefully; results are deterministic per seed.
 */

#include <gtest/gtest.h>

#include "topo/detour_router.h"
#include "topo/dgx1.h"
#include "topo/embedding_search.h"
#include "topo/switch_fabric.h"

namespace ccube {
namespace topo {
namespace {

TEST(EmbeddingSearch, FindsConflictFreeDoubleTreeOnDgx1)
{
    const Graph dgx1 = makeDgx1();
    const auto found = findConflictFreeDoubleTree(dgx1);
    ASSERT_TRUE(found.has_value());
    EXPECT_TRUE(found->tree0.tree.valid());
    EXPECT_TRUE(found->tree1.tree.valid());
    EXPECT_TRUE(isConflictFree(dgx1, *found));
}

TEST(EmbeddingSearch, SharedPairsLandOnDoubleLinksOnDgx1)
{
    const Graph dgx1 = makeDgx1();
    const auto found = findConflictFreeDoubleTree(dgx1);
    ASSERT_TRUE(found.has_value());
    for (const auto& [pair, usage] : analyzeChannelUsage(*found)) {
        if (usage.forward > 1 || usage.backward > 1) {
            EXPECT_GE(dgx1.linkCount(pair.first, pair.second),
                      usage.forward);
        }
    }
}

TEST(EmbeddingSearch, DeterministicPerSeed)
{
    const Graph dgx1 = makeDgx1();
    EmbeddingSearchOptions options;
    options.seed = 7;
    const auto a = findConflictFreeDoubleTree(dgx1, options);
    const auto b = findConflictFreeDoubleTree(dgx1, options);
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(a->tree0.tree.edges(), b->tree0.tree.edges());
    EXPECT_EQ(a->tree1.tree.edges(), b->tree1.tree.edges());
}

TEST(EmbeddingSearch, DifferentSeedsStillConflictFree)
{
    const Graph dgx1 = makeDgx1();
    for (std::uint64_t seed : {1ull, 17ull, 42ull, 1234ull}) {
        EmbeddingSearchOptions options;
        options.seed = seed;
        const auto found = findConflictFreeDoubleTree(dgx1, options);
        ASSERT_TRUE(found.has_value()) << "seed " << seed;
        EXPECT_TRUE(isConflictFree(dgx1, *found)) << "seed " << seed;
    }
}

TEST(EmbeddingSearch, WorksOnSwitchFabric)
{
    SwitchFabricParams params;
    params.num_nodes = 8;
    const Graph fabric = makeSwitchFabric(params);
    EmbeddingSearchOptions options;
    options.num_ranks = 8;
    // Fabric routes go through switches — longer than 2 hops — so
    // direct construction cannot span; searching with detours up to
    // the switch path length is out of scope for the 2-hop search.
    // The mirrored construction is the right tool there; the search
    // must simply not crash or return a bogus embedding.
    const auto found = findConflictFreeDoubleTree(fabric, options);
    if (found.has_value()) {
        EXPECT_TRUE(isConflictFree(fabric, *found));
    }
}

TEST(EmbeddingSearch, FailsGracefullyWhenImpossible)
{
    // A path graph: two link-disjoint spanning trees cannot exist.
    Graph path("path");
    for (int n = 0; n < 4; ++n)
        path.addNode("N" + std::to_string(n));
    path.addLink(0, 1, 25e9, 1e-6);
    path.addLink(1, 2, 25e9, 1e-6);
    path.addLink(2, 3, 25e9, 1e-6);
    EmbeddingSearchOptions options;
    options.max_attempts = 50;
    const auto found = findConflictFreeDoubleTree(path, options);
    EXPECT_FALSE(found.has_value());
}

TEST(EmbeddingSearch, RoutesAlignWithEdges)
{
    const Graph dgx1 = makeDgx1();
    const auto found = findConflictFreeDoubleTree(dgx1);
    ASSERT_TRUE(found.has_value());
    for (const TreeEmbedding* emb : {&found->tree0, &found->tree1}) {
        const auto edges = emb->tree.edges();
        ASSERT_EQ(edges.size(), emb->routes.size());
        for (std::size_t i = 0; i < edges.size(); ++i) {
            EXPECT_EQ(emb->routes[i].hops.front(), edges[i].first);
            EXPECT_EQ(emb->routes[i].hops.back(), edges[i].second);
        }
    }
}

TEST(EmbeddingSearch, DetoursStayShort)
{
    const Graph dgx1 = makeDgx1();
    const auto found = findConflictFreeDoubleTree(dgx1);
    ASSERT_TRUE(found.has_value());
    for (const TreeEmbedding* emb : {&found->tree0, &found->tree1})
        for (const Route& route : emb->routes)
            EXPECT_LE(route.hopCount(), 2);
}

} // namespace
} // namespace topo
} // namespace ccube
