/**
 * @file
 * Reproduces Fig. 3: NCCL AllReduce performance for one-shot vs
 * layer-wise vs slicing invocation granularity with ResNet-50
 * parameter sizes, normalized to the NVLink hardware peak.
 *
 * Paper shape: layer-wise ≈ 2× slower than one-shot; slicing > 4×.
 */

#include <iostream>

#include "dnn/catalog.h"
#include "model/invocation_model.h"
#include "util/table.h"
#include "util/units.h"

int
main()
{
    using namespace ccube;
    using model::InvocationStrategy;

    std::cout << "=== Fig. 3: AllReduce bandwidth vs invocation "
                 "granularity (ResNet-50 parameters, 8 nodes) ===\n\n";

    const dnn::NetworkModel resnet = dnn::buildResnet50();
    std::vector<double> layer_bytes;
    for (double b : resnet.layerParamBytes())
        if (b > 0.0)
            layer_bytes.push_back(b);

    model::InvocationParams params;
    params.link = model::AlphaBeta::fromBandwidth(4.6e-6, 25e9);
    const model::InvocationModel inv(params);
    const double peak = 25e9;

    util::Table table({"strategy", "invocations", "bandwidth_GBps",
                       "normalized_to_peak", "slowdown_vs_oneshot"});
    const double one_shot = inv.effectiveBandwidth(
        8, layer_bytes, InvocationStrategy::kOneShot);
    const struct {
        const char* name;
        InvocationStrategy strategy;
    } rows[] = {
        {"one-shot", InvocationStrategy::kOneShot},
        {"layer-wise", InvocationStrategy::kLayerWise},
        {"slicing", InvocationStrategy::kSlicing},
    };
    for (const auto& row : rows) {
        const double bw =
            inv.effectiveBandwidth(8, layer_bytes, row.strategy);
        const std::size_t count =
            inv.invocationSizes(layer_bytes, row.strategy).size();
        table.addRow({row.name, std::to_string(count),
                      util::formatDouble(bw / 1e9, 2),
                      util::formatDouble(bw / peak, 3),
                      util::formatDouble(one_shot / bw, 2)});
    }
    table.print(std::cout);
    std::cout << "\nPaper reference: layer-wise ≈ 2x loss, slicing > 4x "
                 "loss vs one-shot — C-Cube therefore keeps the "
                 "one-shot collective and chains within it.\n";
    return 0;
}
