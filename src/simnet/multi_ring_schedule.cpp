#include "simnet/multi_ring_schedule.h"

#include <map>
#include <memory>
#include <utility>

#include "obs/monitor.h"
#include "util/logging.h"

namespace ccube {
namespace simnet {

ScheduleResult
runMultiRingSchedule(sim::Simulation& simulation, Network& network,
                     const std::vector<topo::RingEmbedding>& rings,
                     double total_bytes, ccl::Protocol proto)
{
    CCUBE_CHECK(!rings.empty(), "need at least one ring");
    CCUBE_CHECK(total_bytes > 0.0, "non-positive payload");

    // Per ordered pair, assign each ring that uses it a distinct lane
    // so that double links carry two rings without contention.
    using Pair = std::pair<topo::NodeId, topo::NodeId>;
    std::vector<std::map<Pair, int>> lanes(rings.size());
    std::map<Pair, int> next_lane;
    for (std::size_t r = 0; r < rings.size(); ++r) {
        const topo::RingEmbedding& ring = rings[r];
        for (int i = 0; i < ring.size(); ++i) {
            const Pair pair{ring.order[static_cast<std::size_t>(i)],
                            ring.next(i)};
            lanes[r][pair] = next_lane[pair]++;
        }
    }

    const double stripe = total_bytes / static_cast<double>(rings.size());
    std::vector<std::unique_ptr<RingSchedule>> schedules;
    for (std::size_t r = 0; r < rings.size(); ++r) {
        auto lane_fn = [table = lanes[r]](topo::NodeId src,
                                          topo::NodeId dst) {
            const auto it = table.find({src, dst});
            return it == table.end() ? 0 : it->second;
        };
        schedules.push_back(std::make_unique<RingSchedule>(
            network, rings[r], stripe, lane_fn));
        schedules.back()->setProtocol(proto);
    }
    const double at = simulation.now();
    for (auto& schedule : schedules)
        schedule->start(at);
    simulation.run();

    ScheduleResult merged = schedules.front()->result();
    for (std::size_t r = 1; r < schedules.size(); ++r)
        merged.merge(schedules[r]->result());

    obs::Monitor& monitor = obs::Monitor::global();
    if (monitor.enabled())
        monitor.collectiveComplete("allreduce.multi_ring", at,
                                   merged.completion_time,
                                   total_bytes);
    return merged;
}

} // namespace simnet
} // namespace ccube
