#ifndef CCUBE_GPU_DEVICE_H_
#define CCUBE_GPU_DEVICE_H_

/**
 * @file
 * GPU device model.
 *
 * Wraps the roofline compute model with the per-device state C-Cube
 * cares about: the SM tax paid by GPUs that host detour forwarding
 * kernels (§V-C, Fig. 15). Forwarding kernels occupy a few SMs
 * permanently, shrinking the throughput available to training
 * kernels on that device.
 */

#include <string>

#include "dnn/compute_model.h"

namespace ccube {
namespace gpu {

/**
 * One GPU: compute parameters plus forwarding-kernel occupancy.
 */
class Device
{
  public:
    /** Creates device @p id with the given compute parameters. */
    Device(int id, dnn::GpuComputeParams params);

    /** Device index (matches the topology node id). */
    int id() const { return id_; }

    /**
     * Registers @p count detour forwarding kernels on this device,
     * each occupying @p tax_per_kernel of the SMs.
     */
    void hostForwardingKernels(int count, double tax_per_kernel);

    /** Fraction of compute throughput consumed by forwarding. */
    double forwardingTax() const { return tax_; }

    /** Compute model with the residual throughput of this device. */
    dnn::ComputeModel computeModel() const;

    /**
     * Slowdown factor of compute on this device relative to an
     * untaxed one: 1 / (1 − tax).
     */
    double computeSlowdown() const;

  private:
    int id_;
    dnn::GpuComputeParams params_;
    double tax_ = 0.0;
};

} // namespace gpu
} // namespace ccube

#endif // CCUBE_GPU_DEVICE_H_
