/**
 * @file
 * Cross-validation of the closed-form iteration model against the
 * discrete-event scheduler — the system-level analog of Fig. 12(b):
 * the analytic Eqs. (2)/(6)/(7) plus the linear availability ramp
 * must predict what the DES measures, across workloads, modes, and
 * bandwidth settings.
 */

#include <gtest/gtest.h>

#include "core/ccube_engine.h"
#include "model/iteration_model.h"
#include "util/units.h"

namespace ccube {
namespace {

model::IterationModelParams
machineParams(const core::CCubeEngine& engine, double bw_scale)
{
    model::IterationModelParams params;
    params.link = engine.scheduler().linkModel();
    params.gpu = engine.scheduler().gpuParams();
    params.num_gpus = 8;
    params.ring_count =
        static_cast<int>(engine.rings().size());
    params.bandwidth_scale = bw_scale;
    return params;
}

core::Mode
toCoreMode(model::ModeledMode mode)
{
    switch (mode) {
      case model::ModeledMode::kBaseline:
        return core::Mode::kBaseline;
      case model::ModeledMode::kOverlappedTree:
        return core::Mode::kOverlappedTree;
      case model::ModeledMode::kRing: return core::Mode::kRing;
      case model::ModeledMode::kCCube: return core::Mode::kCCube;
    }
    return core::Mode::kBaseline;
}

TEST(IterationModelVsDes, CommTimesWithinTolerance)
{
    core::CCubeEngine engine(dnn::buildResnet50());
    const model::IterationModel model(machineParams(engine, 1.0));
    for (double mb : {16.0, 64.0, 256.0}) {
        const double bytes = util::mib(mb);
        for (auto mode : {model::ModeledMode::kBaseline,
                          model::ModeledMode::kOverlappedTree,
                          model::ModeledMode::kRing}) {
            const double predicted = model.commTime(mode, bytes);
            const double measured =
                engine.commOnly(toCoreMode(mode), bytes)
                    .completion_time;
            // The DES adds detour hops and pipeline-fill effects the
            // closed form omits; 15% agreement across two orders of
            // magnitude of size is the Fig. 12(b)-style check.
            EXPECT_NEAR(measured, predicted, predicted * 0.15)
                << "mode " << static_cast<int>(mode) << " size " << mb;
        }
    }
}

TEST(IterationModelVsDes, TurnaroundWithinTolerance)
{
    core::CCubeEngine engine(dnn::buildResnet50());
    const model::IterationModel model(machineParams(engine, 1.0));
    const double bytes = util::mib(64);
    const double predicted = model.turnaroundTime(
        model::ModeledMode::kOverlappedTree, bytes);
    const double measured =
        engine.commOnly(core::Mode::kOverlappedTree, bytes)
            .turnaroundTime();
    EXPECT_NEAR(measured, predicted, predicted * 0.25);
}

TEST(IterationModelVsDes, NormalizedPerfTracksAcrossSweep)
{
    for (auto build :
         {dnn::buildZfNet, dnn::buildVgg16, dnn::buildResnet50}) {
        core::CCubeEngine engine(build());
        for (double bw : {0.25, 1.0}) {
            const model::IterationModel model(
                machineParams(engine, bw));
            for (int batch : {16, 64}) {
                for (auto mode : {model::ModeledMode::kBaseline,
                                  model::ModeledMode::kOverlappedTree,
                                  model::ModeledMode::kRing,
                                  model::ModeledMode::kCCube}) {
                    core::IterationConfig config;
                    config.batch = batch;
                    config.bandwidth_scale = bw;
                    const double des =
                        engine.evaluate(toCoreMode(mode), config)
                            .normalized_perf;
                    const double analytic = model.normalizedPerf(
                        mode, engine.network(), batch);
                    EXPECT_NEAR(analytic, des, des * 0.12)
                        << engine.network().name() << " bw=" << bw
                        << " batch=" << batch << " mode="
                        << static_cast<int>(mode);
                }
            }
        }
    }
}

TEST(IterationModel, ChainedNeverWorseThanUnchained)
{
    core::CCubeEngine engine(dnn::buildResnet50());
    const model::IterationModel model(machineParams(engine, 0.25));
    const double cc = model.iterationTime(
        model::ModeledMode::kCCube, engine.network(), 32);
    const double c1 = model.iterationTime(
        model::ModeledMode::kOverlappedTree, engine.network(), 32);
    EXPECT_LE(cc, c1 + 1e-12);
}

TEST(IterationModel, BandwidthScaleOnlyAffectsBeta)
{
    core::CCubeEngine engine(dnn::buildZfNet());
    const model::IterationModel high(machineParams(engine, 1.0));
    const model::IterationModel low(machineParams(engine, 0.25));
    const double bytes = util::mib(64);
    const double t_high =
        high.commTime(model::ModeledMode::kRing, bytes);
    const double t_low =
        low.commTime(model::ModeledMode::kRing, bytes);
    // Bandwidth term quadruples; α terms unchanged.
    EXPECT_GT(t_low, t_high * 3.0);
    EXPECT_LT(t_low, t_high * 4.0);
}

} // namespace
} // namespace ccube
