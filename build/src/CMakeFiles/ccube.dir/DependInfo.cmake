
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ccl/allreduce.cpp" "src/CMakeFiles/ccube.dir/ccl/allreduce.cpp.o" "gcc" "src/CMakeFiles/ccube.dir/ccl/allreduce.cpp.o.d"
  "/root/repo/src/ccl/communicator.cpp" "src/CMakeFiles/ccube.dir/ccl/communicator.cpp.o" "gcc" "src/CMakeFiles/ccube.dir/ccl/communicator.cpp.o.d"
  "/root/repo/src/ccl/double_tree_allreduce.cpp" "src/CMakeFiles/ccube.dir/ccl/double_tree_allreduce.cpp.o" "gcc" "src/CMakeFiles/ccube.dir/ccl/double_tree_allreduce.cpp.o.d"
  "/root/repo/src/ccl/mailbox.cpp" "src/CMakeFiles/ccube.dir/ccl/mailbox.cpp.o" "gcc" "src/CMakeFiles/ccube.dir/ccl/mailbox.cpp.o.d"
  "/root/repo/src/ccl/overlapped_tree_allreduce.cpp" "src/CMakeFiles/ccube.dir/ccl/overlapped_tree_allreduce.cpp.o" "gcc" "src/CMakeFiles/ccube.dir/ccl/overlapped_tree_allreduce.cpp.o.d"
  "/root/repo/src/ccl/primitives.cpp" "src/CMakeFiles/ccube.dir/ccl/primitives.cpp.o" "gcc" "src/CMakeFiles/ccube.dir/ccl/primitives.cpp.o.d"
  "/root/repo/src/ccl/ring_allreduce.cpp" "src/CMakeFiles/ccube.dir/ccl/ring_allreduce.cpp.o" "gcc" "src/CMakeFiles/ccube.dir/ccl/ring_allreduce.cpp.o.d"
  "/root/repo/src/ccl/sync_primitives.cpp" "src/CMakeFiles/ccube.dir/ccl/sync_primitives.cpp.o" "gcc" "src/CMakeFiles/ccube.dir/ccl/sync_primitives.cpp.o.d"
  "/root/repo/src/ccl/tree_allreduce.cpp" "src/CMakeFiles/ccube.dir/ccl/tree_allreduce.cpp.o" "gcc" "src/CMakeFiles/ccube.dir/ccl/tree_allreduce.cpp.o.d"
  "/root/repo/src/core/ccube_engine.cpp" "src/CMakeFiles/ccube.dir/core/ccube_engine.cpp.o" "gcc" "src/CMakeFiles/ccube.dir/core/ccube_engine.cpp.o.d"
  "/root/repo/src/core/chunk_mapper.cpp" "src/CMakeFiles/ccube.dir/core/chunk_mapper.cpp.o" "gcc" "src/CMakeFiles/ccube.dir/core/chunk_mapper.cpp.o.d"
  "/root/repo/src/core/dual_gradient_queue.cpp" "src/CMakeFiles/ccube.dir/core/dual_gradient_queue.cpp.o" "gcc" "src/CMakeFiles/ccube.dir/core/dual_gradient_queue.cpp.o.d"
  "/root/repo/src/core/gradient_queue.cpp" "src/CMakeFiles/ccube.dir/core/gradient_queue.cpp.o" "gcc" "src/CMakeFiles/ccube.dir/core/gradient_queue.cpp.o.d"
  "/root/repo/src/core/iteration_scheduler.cpp" "src/CMakeFiles/ccube.dir/core/iteration_scheduler.cpp.o" "gcc" "src/CMakeFiles/ccube.dir/core/iteration_scheduler.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/CMakeFiles/ccube.dir/core/report.cpp.o" "gcc" "src/CMakeFiles/ccube.dir/core/report.cpp.o.d"
  "/root/repo/src/core/timeline.cpp" "src/CMakeFiles/ccube.dir/core/timeline.cpp.o" "gcc" "src/CMakeFiles/ccube.dir/core/timeline.cpp.o.d"
  "/root/repo/src/core/trainer.cpp" "src/CMakeFiles/ccube.dir/core/trainer.cpp.o" "gcc" "src/CMakeFiles/ccube.dir/core/trainer.cpp.o.d"
  "/root/repo/src/dnn/catalog.cpp" "src/CMakeFiles/ccube.dir/dnn/catalog.cpp.o" "gcc" "src/CMakeFiles/ccube.dir/dnn/catalog.cpp.o.d"
  "/root/repo/src/dnn/compute_model.cpp" "src/CMakeFiles/ccube.dir/dnn/compute_model.cpp.o" "gcc" "src/CMakeFiles/ccube.dir/dnn/compute_model.cpp.o.d"
  "/root/repo/src/dnn/layer.cpp" "src/CMakeFiles/ccube.dir/dnn/layer.cpp.o" "gcc" "src/CMakeFiles/ccube.dir/dnn/layer.cpp.o.d"
  "/root/repo/src/dnn/network.cpp" "src/CMakeFiles/ccube.dir/dnn/network.cpp.o" "gcc" "src/CMakeFiles/ccube.dir/dnn/network.cpp.o.d"
  "/root/repo/src/dnn/shapes.cpp" "src/CMakeFiles/ccube.dir/dnn/shapes.cpp.o" "gcc" "src/CMakeFiles/ccube.dir/dnn/shapes.cpp.o.d"
  "/root/repo/src/gpu/device.cpp" "src/CMakeFiles/ccube.dir/gpu/device.cpp.o" "gcc" "src/CMakeFiles/ccube.dir/gpu/device.cpp.o.d"
  "/root/repo/src/gpu/stream.cpp" "src/CMakeFiles/ccube.dir/gpu/stream.cpp.o" "gcc" "src/CMakeFiles/ccube.dir/gpu/stream.cpp.o.d"
  "/root/repo/src/model/alpha_beta.cpp" "src/CMakeFiles/ccube.dir/model/alpha_beta.cpp.o" "gcc" "src/CMakeFiles/ccube.dir/model/alpha_beta.cpp.o.d"
  "/root/repo/src/model/invocation_model.cpp" "src/CMakeFiles/ccube.dir/model/invocation_model.cpp.o" "gcc" "src/CMakeFiles/ccube.dir/model/invocation_model.cpp.o.d"
  "/root/repo/src/model/iteration_model.cpp" "src/CMakeFiles/ccube.dir/model/iteration_model.cpp.o" "gcc" "src/CMakeFiles/ccube.dir/model/iteration_model.cpp.o.d"
  "/root/repo/src/model/overlapped_tree_model.cpp" "src/CMakeFiles/ccube.dir/model/overlapped_tree_model.cpp.o" "gcc" "src/CMakeFiles/ccube.dir/model/overlapped_tree_model.cpp.o.d"
  "/root/repo/src/model/ring_model.cpp" "src/CMakeFiles/ccube.dir/model/ring_model.cpp.o" "gcc" "src/CMakeFiles/ccube.dir/model/ring_model.cpp.o.d"
  "/root/repo/src/model/tree_model.cpp" "src/CMakeFiles/ccube.dir/model/tree_model.cpp.o" "gcc" "src/CMakeFiles/ccube.dir/model/tree_model.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/ccube.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/ccube.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/resource.cpp" "src/CMakeFiles/ccube.dir/sim/resource.cpp.o" "gcc" "src/CMakeFiles/ccube.dir/sim/resource.cpp.o.d"
  "/root/repo/src/sim/simulation.cpp" "src/CMakeFiles/ccube.dir/sim/simulation.cpp.o" "gcc" "src/CMakeFiles/ccube.dir/sim/simulation.cpp.o.d"
  "/root/repo/src/simnet/channel.cpp" "src/CMakeFiles/ccube.dir/simnet/channel.cpp.o" "gcc" "src/CMakeFiles/ccube.dir/simnet/channel.cpp.o.d"
  "/root/repo/src/simnet/collective_schedule.cpp" "src/CMakeFiles/ccube.dir/simnet/collective_schedule.cpp.o" "gcc" "src/CMakeFiles/ccube.dir/simnet/collective_schedule.cpp.o.d"
  "/root/repo/src/simnet/double_tree_schedule.cpp" "src/CMakeFiles/ccube.dir/simnet/double_tree_schedule.cpp.o" "gcc" "src/CMakeFiles/ccube.dir/simnet/double_tree_schedule.cpp.o.d"
  "/root/repo/src/simnet/multi_ring_schedule.cpp" "src/CMakeFiles/ccube.dir/simnet/multi_ring_schedule.cpp.o" "gcc" "src/CMakeFiles/ccube.dir/simnet/multi_ring_schedule.cpp.o.d"
  "/root/repo/src/simnet/overlapped_tree_schedule.cpp" "src/CMakeFiles/ccube.dir/simnet/overlapped_tree_schedule.cpp.o" "gcc" "src/CMakeFiles/ccube.dir/simnet/overlapped_tree_schedule.cpp.o.d"
  "/root/repo/src/simnet/ring_schedule.cpp" "src/CMakeFiles/ccube.dir/simnet/ring_schedule.cpp.o" "gcc" "src/CMakeFiles/ccube.dir/simnet/ring_schedule.cpp.o.d"
  "/root/repo/src/simnet/transfer_engine.cpp" "src/CMakeFiles/ccube.dir/simnet/transfer_engine.cpp.o" "gcc" "src/CMakeFiles/ccube.dir/simnet/transfer_engine.cpp.o.d"
  "/root/repo/src/simnet/tree_schedule.cpp" "src/CMakeFiles/ccube.dir/simnet/tree_schedule.cpp.o" "gcc" "src/CMakeFiles/ccube.dir/simnet/tree_schedule.cpp.o.d"
  "/root/repo/src/topo/detour_router.cpp" "src/CMakeFiles/ccube.dir/topo/detour_router.cpp.o" "gcc" "src/CMakeFiles/ccube.dir/topo/detour_router.cpp.o.d"
  "/root/repo/src/topo/dgx1.cpp" "src/CMakeFiles/ccube.dir/topo/dgx1.cpp.o" "gcc" "src/CMakeFiles/ccube.dir/topo/dgx1.cpp.o.d"
  "/root/repo/src/topo/dgx2.cpp" "src/CMakeFiles/ccube.dir/topo/dgx2.cpp.o" "gcc" "src/CMakeFiles/ccube.dir/topo/dgx2.cpp.o.d"
  "/root/repo/src/topo/double_tree.cpp" "src/CMakeFiles/ccube.dir/topo/double_tree.cpp.o" "gcc" "src/CMakeFiles/ccube.dir/topo/double_tree.cpp.o.d"
  "/root/repo/src/topo/embedding_search.cpp" "src/CMakeFiles/ccube.dir/topo/embedding_search.cpp.o" "gcc" "src/CMakeFiles/ccube.dir/topo/embedding_search.cpp.o.d"
  "/root/repo/src/topo/graph.cpp" "src/CMakeFiles/ccube.dir/topo/graph.cpp.o" "gcc" "src/CMakeFiles/ccube.dir/topo/graph.cpp.o.d"
  "/root/repo/src/topo/ring_embedding.cpp" "src/CMakeFiles/ccube.dir/topo/ring_embedding.cpp.o" "gcc" "src/CMakeFiles/ccube.dir/topo/ring_embedding.cpp.o.d"
  "/root/repo/src/topo/switch_fabric.cpp" "src/CMakeFiles/ccube.dir/topo/switch_fabric.cpp.o" "gcc" "src/CMakeFiles/ccube.dir/topo/switch_fabric.cpp.o.d"
  "/root/repo/src/topo/tree_embedding.cpp" "src/CMakeFiles/ccube.dir/topo/tree_embedding.cpp.o" "gcc" "src/CMakeFiles/ccube.dir/topo/tree_embedding.cpp.o.d"
  "/root/repo/src/util/flags.cpp" "src/CMakeFiles/ccube.dir/util/flags.cpp.o" "gcc" "src/CMakeFiles/ccube.dir/util/flags.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "src/CMakeFiles/ccube.dir/util/logging.cpp.o" "gcc" "src/CMakeFiles/ccube.dir/util/logging.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/ccube.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/ccube.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/ccube.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/ccube.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/ccube.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/ccube.dir/util/table.cpp.o.d"
  "/root/repo/src/util/units.cpp" "src/CMakeFiles/ccube.dir/util/units.cpp.o" "gcc" "src/CMakeFiles/ccube.dir/util/units.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
