#include "ccl/state_machine.h"

#include <chrono>
#include <cstdlib>
#include <exception>
#include <string>
#include <utility>

#include "ccl/fault.h"
#include "ccl/mailbox.h"
#include "obs/context.h"
#include "obs/monitor.h"
#include "obs/profiler.h"
#include "util/logging.h"
#include "util/spin_wait.h"

namespace ccube {
namespace ccl {

namespace {

std::uint64_t
steadyNowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

/**
 * One run() invocation: the tasks, their shared fault context, and
 * the completion latch. Stack-local to run(); outlives every task of
 * the batch because run() blocks until remaining hits zero.
 */
struct StateMachineEngine::Batch {
    CommFaultContext* fault = nullptr;
    std::vector<std::unique_ptr<RankTask>> tasks;
    std::mutex mutex;
    std::condition_variable cv;
    std::size_t remaining = 0;
    std::exception_ptr error;
};

StateMachineEngine::StateMachineEngine(int num_workers)
    : queues_(static_cast<std::size_t>(num_workers < 1 ? 1
                                                       : num_workers))
{
    const int count = static_cast<int>(queues_.size());
    workers_.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i)
        workers_.emplace_back([this, i]() { workerLoop(i); });

    // Live engine gauges for obs::Monitor snapshots: pool size,
    // parked/runnable task counts, cumulative park/steal activity.
    monitor_token_ = obs::Monitor::global().addSource(
        [this](double,
               std::vector<std::pair<std::string, double>>& out) {
            out.emplace_back("ccl.sm.workers",
                             static_cast<double>(workerCount()));
            out.emplace_back("ccl.sm.parked",
                             static_cast<double>(parkedNow()));
            out.emplace_back("ccl.sm.runnable",
                             static_cast<double>(runnableNow()));
            out.emplace_back("ccl.sm.parks",
                             static_cast<double>(parks()));
            out.emplace_back("ccl.sm.steals",
                             static_cast<double>(steals()));
        });
}

StateMachineEngine::~StateMachineEngine()
{
    obs::Monitor::global().removeSource(monitor_token_);
    {
        std::lock_guard<std::mutex> lock(idle_mutex_);
        stop_ = true;
    }
    idle_cv_.notify_all();
    for (std::thread& worker : workers_)
        worker.join();
}

StateMachineEngine&
StateMachineEngine::shared()
{
    // Intentionally leaked: communicators may be destroyed during
    // static destruction, after a stack-allocated engine would have
    // been torn down.
    static StateMachineEngine* engine =
        new StateMachineEngine(defaultWorkerCount());
    return *engine;
}

int
StateMachineEngine::defaultWorkerCount()
{
    static const int count = []() {
        if (const char* env = std::getenv("CCUBE_CCL_SM_WORKERS")) {
            const long n = std::strtol(env, nullptr, 10);
            if (n >= 1)
                return static_cast<int>(n);
        }
        const unsigned hw = std::thread::hardware_concurrency();
        const int doubled = static_cast<int>(hw) * 2;
        return doubled < 2 ? 2 : doubled;
    }();
    return count;
}

void
StateMachineEngine::enqueue(RankTask& task)
{
    WorkerQueue& queue =
        queues_[static_cast<std::size_t>(task.home_worker_)];
    {
        std::lock_guard<std::mutex> lock(queue.mutex);
        queue.tasks.push_back(&task);
    }
    {
        // The increment happens under idle_mutex_ so a worker checking
        // the wait predicate can never miss it (decrements are
        // lock-free: a stale positive just causes one empty rescan).
        std::lock_guard<std::mutex> lock(idle_mutex_);
        pending_.fetch_add(1, std::memory_order_relaxed);
    }
    idle_cv_.notify_one();
}

void
StateMachineEngine::wake(RankTask& task)
{
    // Exactly-once handoff: the caller owns the wake (it removed the
    // waiter node from the semaphore list). Exchange tells us whether
    // the parking worker already published kParked — then we schedule
    // — or is still between registration and publication (kParking) —
    // then its failed CAS schedules.
    const int old = task.park_state_.exchange(
        RankTask::kWoken, std::memory_order_acq_rel);
    if (old == RankTask::kParked) {
        parked_now_.fetch_sub(1, std::memory_order_relaxed);
        enqueue(task);
    }
}

void
RankTask::semaphoreReady()
{
    engine_->wake(*this);
}

void
StateMachineEngine::sweepAborted(Batch& batch)
{
    // Claim still-parked tasks of this batch: cancelPark's removal is
    // the ownership handshake, so a racing poster and this sweep can
    // never both schedule the same task. Repeated every poll while
    // aborted, catching tasks that parked after the epoch tripped.
    for (const std::unique_ptr<RankTask>& task : batch.tasks) {
        if (task->park_state_.load(std::memory_order_acquire) !=
            RankTask::kParked)
            continue;
        BoundedSemaphore* sem = task->parked_sem_;
        if (sem != nullptr && sem->cancelPark(*task))
            wake(*task);
    }
}

RankTask*
StateMachineEngine::tryPop(int index, bool* stolen)
{
    WorkerQueue& own = queues_[static_cast<std::size_t>(index)];
    {
        std::lock_guard<std::mutex> lock(own.mutex);
        if (!own.tasks.empty()) {
            RankTask* task = own.tasks.front();
            own.tasks.pop_front();
            *stolen = false;
            return task;
        }
    }
    const int count = static_cast<int>(queues_.size());
    obs::ScopedProfPhase prof(obs::ProfPhase::kSteal, -1);
    for (int offset = 1; offset < count; ++offset) {
        WorkerQueue& victim =
            queues_[static_cast<std::size_t>((index + offset) % count)];
        std::lock_guard<std::mutex> lock(victim.mutex);
        if (!victim.tasks.empty()) {
            // Thieves take the back — the task least likely to be
            // cache-warm on the victim.
            RankTask* task = victim.tasks.back();
            victim.tasks.pop_back();
            *stolen = true;
            return task;
        }
    }
    return nullptr;
}

void
StateMachineEngine::workerLoop(int index)
{
    obs::setThreadRank(-1);
    obs::labelThread(
        ("sm worker " + std::to_string(index)).c_str());
    while (true) {
        bool stolen = false;
        RankTask* task = tryPop(index, &stolen);
        if (task != nullptr) {
            pending_.fetch_sub(1, std::memory_order_relaxed);
            runTask(*task, index, stolen);
            continue;
        }
        obs::ScopedProfPhase prof(obs::ProfPhase::kIdle, -1);
        std::unique_lock<std::mutex> lock(idle_mutex_);
        if (stop_)
            return;
        idle_cv_.wait(lock, [this]() {
            return stop_ ||
                   pending_.load(std::memory_order_relaxed) > 0;
        });
        if (stop_ &&
            pending_.load(std::memory_order_relaxed) == 0)
            return;
    }
}

void
StateMachineEngine::runTask(RankTask& task, int worker, bool stolen)
{
    Batch* batch = task.batch_;
    task.park_state_.store(RankTask::kRunning,
                           std::memory_order_relaxed);
    // The resumed task inherits this worker, keeping its queue
    // affinity where it last ran.
    task.home_worker_ = worker;

    obs::setThreadRank(task.rank());
    ScopedFaultContext fault_scope(batch->fault);
    obs::RankCounters& counters = obs::RankCounters::global();
    if (stolen) {
        counters.addSmSteal();
        steals_.fetch_add(1, std::memory_order_relaxed);
    }
    if (task.resuming_) {
        task.resuming_ = false;
        counters.addSmResume();
        resumes_.fetch_add(1, std::memory_order_relaxed);
        if (batch->fault != nullptr)
            batch->fault->noteWaitEnd();
        // Exact parked-time attribution: a parked task occupies no
        // thread, so the sampler can't see it — the resume edge
        // measures the episode instead.
        if (task.park_begin_ns_ != 0) {
            const std::uint64_t now = steadyNowNs();
            if (now > task.park_begin_ns_)
                obs::Profiler::global().addParkedNs(
                    task.rank(), now - task.park_begin_ns_);
            task.park_begin_ns_ = 0;
        }
    }

    StepStatus status;
    try {
        // Abort/deadline check at every resume point — the state-
        // machine analog of the bounded spins' periodic abortPoll.
        abortPoll();
        steps_.fetch_add(1, std::memory_order_relaxed);
        StepContext ctx(*this, task);
        obs::ScopedProfPhase prof(obs::ProfPhase::kStep, task.rank());
        status = task.step(ctx);
    } catch (...) {
        obs::setThreadRank(-1);
        finishTask(task, std::current_exception());
        return;
    }
    obs::setThreadRank(-1);

    switch (status) {
      case StepStatus::kDone:
        counters.addExecutorTask();
        finishTask(task, nullptr);
        return;
      case StepStatus::kContinue:
        enqueue(task);
        return;
      case StepStatus::kParked: {
        int expected = RankTask::kParking;
        if (task.park_state_.compare_exchange_strong(
                expected, RankTask::kParked,
                std::memory_order_acq_rel)) {
            // Parked for real; a poster (or the abort sweep) owns the
            // resume now.
            return;
        }
        // The waker beat our publication (state is kWoken): it left
        // the requeue to us.
        parked_now_.fetch_sub(1, std::memory_order_relaxed);
        enqueue(task);
        return;
      }
    }
}

void
StateMachineEngine::finishTask(RankTask& task, std::exception_ptr error)
{
    Batch* batch = task.batch_;
    std::lock_guard<std::mutex> lock(batch->mutex);
    if (error && !batch->error)
        batch->error = error;
    if (--batch->remaining == 0)
        batch->cv.notify_all();
}

void
StateMachineEngine::run(std::vector<std::unique_ptr<RankTask>> tasks,
                        CommFaultContext* fault)
{
    if (tasks.empty())
        return;

    Batch batch;
    batch.fault = fault;
    batch.tasks = std::move(tasks);
    batch.remaining = batch.tasks.size();

    const int worker_count = workerCount();
    int next_worker = 0;
    for (const std::unique_ptr<RankTask>& task : batch.tasks) {
        task->engine_ = this;
        task->batch_ = &batch;
        task->park_state_.store(RankTask::kRunning,
                                std::memory_order_relaxed);
        task->resuming_ = false;
        // Initial placement: round-robin over the pool; after that a
        // task sticks to the worker it last ran on (minus steals).
        task->home_worker_ = next_worker;
        next_worker = (next_worker + 1) % worker_count;
    }
    for (const std::unique_ptr<RankTask>& task : batch.tasks)
        enqueue(*task);

    std::unique_lock<std::mutex> lock(batch.mutex);
    while (batch.remaining > 0) {
        batch.cv.wait_for(lock, std::chrono::milliseconds(1));
        if (fault != nullptr && fault->abortState().aborted()) {
            // A watchdog or manual abort tripped the epoch: wake the
            // batch's parked tasks so their next step unwinds with
            // AbortedWait instead of waiting for a post that will
            // never come.
            lock.unlock();
            sweepAborted(batch);
            lock.lock();
        }
    }
    if (batch.error)
        std::rethrow_exception(batch.error);
}

StepStatus
StepContext::parkOnArrival(Mailbox& box)
{
    // Waiting on a chunk arrival = waiting on the producer rank.
    return parkOn(box.arrivalSemaphore(), box.traceLabel().c_str(),
                  box.flowId(), box.srcRank());
}

StepStatus
StepContext::parkOnFreeSlot(Mailbox& box)
{
    // Waiting on a free receive buffer = waiting on the consumer.
    return parkOn(box.freeSlotSemaphore(), box.traceLabel().c_str(),
                  box.flowId(), box.dstRank());
}

StepStatus
StepContext::parkOn(BoundedSemaphore& sem, const char* label, int flow,
                    int peer)
{
    // Small-message fast path: while the pool has nothing else to run,
    // a bounded spin beats the park/resume round trip (PR 2 measured
    // the pure-spin protocol at a few microseconds per chunk). Under
    // load — more runnable tasks than workers — park immediately and
    // let the queue drain.
    if (engine_.runnableNow() <= engine_.workerCount()) {
        util::SpinWait spin;
        while (!spin.shouldPark()) {
            spin.once([]() { abortPoll(); });
            if (sem.value() > 0)
                return StepStatus::kContinue;
        }
    }

    CommFaultContext* fault = CommFaultContext::current();
    if (fault != nullptr)
        fault->noteWaitBegin(label, flow, peer);
    task_.park_state_.store(RankTask::kParking,
                            std::memory_order_relaxed);
    task_.parked_sem_ = &sem;
    task_.park_begin_ns_ = steadyNowNs();
    if (!sem.parkOnWait(task_)) {
        // The condition turned true between the failed try* and the
        // registration recheck: abandon the park and retry the op.
        task_.park_state_.store(RankTask::kRunning,
                                std::memory_order_relaxed);
        task_.park_begin_ns_ = 0;
        if (fault != nullptr)
            fault->noteWaitEnd();
        return StepStatus::kContinue;
    }
    // Registered. The wait-site label stays published while parked so
    // a deadline overrun blames this rank at this mailbox (the resume
    // path clears it). The worker publishes kParked on return.
    task_.resuming_ = true;
    obs::RankCounters::global().addSmPark();
    engine_.parks_.fetch_add(1, std::memory_order_relaxed);
    engine_.parked_now_.fetch_add(1, std::memory_order_relaxed);
    return StepStatus::kParked;
}

} // namespace ccl
} // namespace ccube
