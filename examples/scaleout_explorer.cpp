/**
 * @file
 * Scale-out explorer: for a grid of node counts and message sizes on
 * a switched fabric, runs ring, baseline tree, and overlapped tree
 * AllReduce and reports which algorithm wins — the tool a deployment
 * engineer would use to pick a collective per (P, N) regime.
 */

#include <iostream>
#include <vector>

#include "model/tree_model.h"
#include "simnet/channel.h"
#include "simnet/double_tree_schedule.h"
#include "simnet/ring_schedule.h"
#include "topo/double_tree.h"
#include "topo/ring_embedding.h"
#include "topo/switch_fabric.h"
#include "util/table.h"
#include "util/units.h"

int
main()
{
    using namespace ccube;

    std::cout << "Best AllReduce algorithm per (nodes, size) on a "
                 "switched fabric\n\n";

    const std::vector<int> node_counts{8, 32, 128, 512};
    const std::vector<std::pair<const char*, double>> sizes{
        {"64KB", util::kib(64)},
        {"4MB", util::mib(4)},
        {"64MB", util::mib(64)},
    };

    util::Table table({"nodes", "size", "ring_ms", "tree_B_ms",
                       "tree_C1_ms", "winner"});
    const model::AlphaBeta link =
        model::AlphaBeta::fromBandwidth(1e-6, 25e9);
    const model::TreeModel tree_model(link);

    for (int p : node_counts) {
        topo::SwitchFabricParams params;
        params.num_nodes = p;
        params.link_latency = 1e-6;
        const topo::Graph graph = topo::makeSwitchFabric(params);
        const auto double_tree =
            topo::makeMirroredDoubleTree(graph, p);
        const auto ring = topo::makeSequentialRing(p);

        for (const auto& [label, bytes] : sizes) {
            const int chunks =
                tree_model.optimalChunksInt(p, bytes / 2.0);

            sim::Simulation sim_r;
            simnet::Network net_r(sim_r, graph);
            const double t_ring =
                simnet::runRingSchedule(sim_r, net_r, ring, bytes)
                    .completion_time;

            sim::Simulation sim_b;
            simnet::Network net_b(sim_b, graph);
            const double t_base =
                simnet::runDoubleTreeSchedule(
                    sim_b, net_b, double_tree, bytes,
                    simnet::PhaseMode::kTwoPhase, chunks,
                    simnet::LanePolicy::kSharedPort)
                    .completion_time;

            sim::Simulation sim_c;
            simnet::Network net_c(sim_c, graph);
            const double t_over =
                simnet::runDoubleTreeSchedule(
                    sim_c, net_c, double_tree, bytes,
                    simnet::PhaseMode::kOverlapped, chunks,
                    simnet::LanePolicy::kSharedPort)
                    .completion_time;

            const char* winner = "overlapped tree (C1)";
            if (t_ring < t_over && t_ring < t_base)
                winner = "ring";
            else if (t_base < t_over)
                winner = "baseline tree";
            table.addRow({std::to_string(p), label,
                          util::formatDouble(t_ring * 1e3, 3),
                          util::formatDouble(t_base * 1e3, 3),
                          util::formatDouble(t_over * 1e3, 3),
                          winner});
        }
    }
    table.print(std::cout);
    std::cout << "\nRings hold on for large messages at small scale; "
                 "the overlapped tree takes over as node count grows "
                 "or messages shrink (paper Figs. 4, 14).\n";
    return 0;
}
