/**
 * @file
 * Ablation: automated conflict-free embedding search vs the
 * hand-crafted paper embedding.
 *
 * The paper constructs its DGX-1 double tree by hand (§IV-A); our
 * randomized-greedy search finds conflict-free embeddings
 * automatically. This harness compares several auto-found embeddings
 * with the hand-crafted one on communication completion and
 * turnaround, and reports their structure.
 */

#include <iostream>

#include "obs/session.h"
#include "sweep/sweep.h"
#include "simnet/channel.h"
#include "simnet/double_tree_schedule.h"
#include "topo/detour_router.h"
#include "topo/dgx1.h"
#include "topo/embedding_search.h"
#include "util/flags.h"
#include "util/table.h"
#include "util/units.h"

namespace {

using namespace ccube;

void
addRow(util::Table& table, const std::string& name,
       const topo::Graph& graph,
       const topo::DoubleTreeEmbedding& embedding, double bytes)
{
    sim::Simulation sim;
    simnet::Network net(sim, graph);
    const auto result = simnet::runDoubleTreeSchedule(
        sim, net, embedding, bytes, simnet::PhaseMode::kOverlapped, 32);
    int detours = 0;
    int max_height = 0;
    for (const topo::TreeEmbedding* emb :
         {&embedding.tree0, &embedding.tree1}) {
        for (const topo::Route& route : emb->routes)
            if (route.isDetour())
                ++detours;
        max_height = std::max(max_height, emb->tree.height());
    }
    table.addRow({name, std::to_string(detours),
                  std::to_string(max_height),
                  util::formatDouble(result.completion_time * 1e3, 3),
                  util::formatDouble(result.turnaroundTime() * 1e3, 3)});
}

} // namespace

int
main(int argc, char** argv)
{
    const ccube::util::Flags flags(argc, argv);
    ccube::obs::ObsSession obs_session(flags);
    std::cout << "=== Ablation: hand-crafted vs auto-searched "
                 "double-tree embeddings (DGX-1, 64 MiB, "
                 "overlapped) ===\n\n";

    const topo::Graph dgx1 = topo::makeDgx1();
    const double bytes = util::mib(64);

    util::Table table({"embedding", "detours", "tree_height",
                       "completion_ms", "turnaround_ms"});
    addRow(table, "hand-crafted (paper Fig. 10)", dgx1,
           topo::makeDgx1DoubleTree(dgx1), bytes);
    const sweep::Options pool = sweep::Options::fromFlags(flags);
    for (std::uint64_t seed : {1ull, 7ull, 42ull, 99ull}) {
        topo::EmbeddingSearchOptions options;
        options.seed = seed;
        // Restart attempts fan across the sweep pool; the result is
        // identical for every --jobs value.
        options.jobs = pool.jobs;
        const auto found =
            topo::findConflictFreeDoubleTree(dgx1, options);
        if (!found) {
            std::cout << "seed " << seed << ": no embedding found\n";
            continue;
        }
        addRow(table, "auto-search seed " + std::to_string(seed), dgx1,
               *found, bytes);
    }
    table.print(std::cout);
    std::cout << "\nAll embeddings are conflict-free by construction; "
                 "completion differs with tree height and detour "
                 "count. The search makes C-Cube portable to machines "
                 "without a hand analysis.\n";
    return 0;
}
