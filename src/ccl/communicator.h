#ifndef CCUBE_CCL_COMMUNICATOR_H_
#define CCUBE_CCL_COMMUNICATOR_H_

/**
 * @file
 * Communicator: the rank/"GPU" execution context of the functional
 * collective library.
 *
 * One thread per rank plays the role of one GPU running persistent
 * kernels; mailboxes play the role of NVLink P2P receive buffers.
 * Mailboxes are keyed by (src, dst, flow) because one physical link
 * may carry several logical flows (e.g. the two trees of a double
 * tree, or a detour passing through a transit GPU) with independent
 * buffer pools — exactly as NCCL allocates per-channel buffers.
 */

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "ccl/mailbox.h"

namespace ccube {
namespace ccl {

/** Identifies a logical flow multiplexed over a physical direction. */
using FlowId = int;

/** Well-known flow ids used by the built-in algorithms. */
enum : FlowId {
    kFlowRing = 0,          ///< ring neighbor traffic
    kFlowTree0Reduce = 1,   ///< tree 0, reduction direction
    kFlowTree0Broadcast = 2,///< tree 0, broadcast direction
    kFlowTree1Reduce = 3,   ///< tree 1, reduction direction
    kFlowTree1Broadcast = 4,///< tree 1, broadcast direction
};

/**
 * A group of ranks that communicate through mailboxes.
 */
class Communicator
{
  public:
    /**
     * Creates a communicator of @p num_ranks ranks whose mailboxes
     * have @p mailbox_slots receive buffers each.
     */
    explicit Communicator(int num_ranks, int mailbox_slots = 4);

    /** Number of participating ranks. */
    int numRanks() const { return num_ranks_; }

    /** Receive-buffer count per mailbox. */
    int mailboxSlots() const { return mailbox_slots_; }

    /**
     * The mailbox carrying flow @p flow from @p src to @p dst;
     * created on first use (thread-safe).
     */
    Mailbox& mailbox(int src, int dst, FlowId flow);

    /**
     * Runs @p body concurrently on every rank (one thread each) and
     * joins. Nested helper threads (e.g. the reduction/broadcast
     * kernels of the overlapped tree) are the body's responsibility.
     */
    void run(const std::function<void(int rank)>& body);

    /**
     * Sense-reversing barrier across all ranks; callable only from
     * inside run().
     */
    void barrier();

  private:
    using Key = std::tuple<int, int, FlowId>;

    const int num_ranks_;
    const int mailbox_slots_;

    std::mutex registry_mutex_;
    std::map<Key, std::unique_ptr<Mailbox>> mailboxes_;

    // Barrier state.
    std::atomic<int> barrier_count_{0};
    std::atomic<int> barrier_sense_{0};
};

} // namespace ccl
} // namespace ccube

#endif // CCUBE_CCL_COMMUNICATOR_H_
